open Helpers
module ESet = Structure.Element.Set
module EMap = Structure.Element.Map

let check = Alcotest.(check bool)

let triangle = inst [ ("R", [ "a"; "b" ]); ("R", [ "b"; "c" ]); ("R", [ "c"; "a" ]) ]

let guarded_triangle =
  Structure.Instance.add_fact
    (Structure.Instance.fact "Q" [ e "a"; e "b"; e "c" ])
    triangle

let test_guarded_sets () =
  check "pair guarded" true
    (Structure.Guarded.is_guarded triangle (ESet.of_list [ e "a"; e "b" ]));
  check "triple unguarded" false
    (Structure.Guarded.is_guarded triangle (ESet.of_list [ e "a"; e "b"; e "c" ]));
  check "triple guarded with Q" true
    (Structure.Guarded.is_guarded guarded_triangle
       (ESet.of_list [ e "a"; e "b"; e "c" ]));
  let maxg = Structure.Guarded.maximal_guarded_sets triangle in
  Alcotest.(check int) "three maximal guarded sets" 3 (List.length maxg)

let test_homomorphism () =
  let path = inst [ ("R", [ "x"; "y" ]); ("R", [ "y"; "z" ]) ] in
  (* path -> triangle exists *)
  check "path to triangle" true
    (Structure.Homomorphism.exists ~source:path ~target:triangle ());
  (* triangle -> path does not *)
  check "triangle to path" false
    (Structure.Homomorphism.exists ~source:triangle ~target:path ());
  (* hom composition is a hom *)
  let m = Option.get (Structure.Homomorphism.find ~source:path ~target:triangle ()) in
  check "is_homomorphism" true
    (Structure.Homomorphism.is_homomorphism m ~source:path ~target:triangle)

let test_homomorphism_fixed () =
  let src = inst [ ("R", [ "u"; "w" ]) ] in
  let fixed = EMap.singleton (e "u") (e "a") in
  let m = Structure.Homomorphism.find ~fixed ~source:src ~target:triangle () in
  check "fixed start" true
    (match m with
    | Some m -> Structure.Element.equal (EMap.find (e "u") m) (e "a")
    | None -> false)

let test_hom_count_qcheck =
  QCheck.Test.make ~name:"hom count matches brute force" ~count:30
    QCheck.(pair (int_bound 100) (int_bound 3))
    (fun (seed, size) ->
      let size = size + 1 in
      let signature = Logic.Signature.of_list [ ("R", 2) ] in
      let rng = Random.State.make [| seed |] in
      let a = Structure.Randgen.instance ~rng ~signature ~size:2 ~p:0.5 in
      let b = Structure.Randgen.instance ~rng ~signature ~size ~p:0.4 in
      if Structure.Instance.cardinal a = 0 then true
      else
        let found = Structure.Homomorphism.all ~source:a ~target:b () in
        (* brute force: all total maps dom(a) -> dom(b) *)
        let doms = Structure.Instance.domain_list a in
        let cods = Structure.Instance.domain_list b in
        let rec maps = function
          | [] -> [ EMap.empty ]
          | d :: rest ->
              List.concat_map
                (fun m -> List.map (fun cd -> EMap.add d cd m) cods)
                (maps rest)
        in
        let brute =
          List.filter
            (fun m -> Structure.Homomorphism.is_homomorphism m ~source:a ~target:b)
            (maps doms)
        in
        List.length brute = List.length found)

let test_gaifman () =
  let g = Structure.Gaifman.of_instance triangle in
  Alcotest.(check (option int)) "distance a-c" (Some 1)
    (Structure.Gaifman.distance g (e "a") (e "c"));
  check "connected" true (Structure.Gaifman.is_connected g);
  let two = inst [ ("R", [ "a"; "b" ]); ("R", [ "c"; "d" ]) ] in
  let g2 = Structure.Gaifman.of_instance two in
  check "disconnected" false (Structure.Gaifman.is_connected g2);
  Alcotest.(check int) "two components" 2
    (List.length (Structure.Gaifman.connected_components g2))

let test_treedec () =
  (* Example 4: the R-triangle is not guarded tree decomposable; adding
     the guard Q(x,y,z) makes it decomposable. *)
  check "triangle cyclic" false
    (Structure.Treedec.is_guarded_tree_decomposable triangle);
  check "guarded triangle acyclic" true
    (Structure.Treedec.is_guarded_tree_decomposable guarded_triangle);
  let path = inst [ ("R", [ "x"; "y" ]); ("R", [ "y"; "z" ]) ] in
  check "path acyclic" true (Structure.Treedec.is_guarded_tree_decomposable path);
  check "path cg" true (Structure.Treedec.is_cg_tree_decomposable path)

let test_disjoint_union () =
  let a = inst [ ("A", [ "a" ]) ] in
  let b = inst [ ("B", [ "a" ]) ] in
  let u = Structure.Instance.disjoint_union a b in
  Alcotest.(check int) "domains kept apart" 2 (Structure.Instance.domain_size u);
  Alcotest.(check int) "both facts present" 2 (Structure.Instance.cardinal u)

let test_unravel_chain () =
  (* Example 5 (1): a triangle of guarded sets unravels into chains; the
     up map is a homomorphism onto D. *)
  let d = triangle in
  let u = Structure.Unravel.unravel ~depth:4 d in
  let du = Structure.Unravel.instance u in
  check "unravelling acyclic" true
    (Structure.Treedec.is_guarded_tree_decomposable du);
  let up = Structure.Unravel.up_map u in
  check "up is a homomorphism" true
    (Structure.Homomorphism.is_homomorphism up ~source:du ~target:d);
  (* every element of du is a copy of an element of d *)
  check "up total" true
    (ESet.for_all (fun x -> EMap.mem x up) (Structure.Instance.domain du))

let test_unravel_ugc2 () =
  (* Example 5 (2): the uGF-unravelling of a depth-1 tree with root a has
     infinite outdegree at the copies of a (bounded here), while the
     uGC2-unravelling preserves successor counts. *)
  let d =
    inst [ ("R", [ "a"; "b1" ]); ("R", [ "a"; "b2" ]); ("R", [ "a"; "b3" ]) ]
  in
  let count_r_succ i x =
    List.length
      (List.filter
         (fun (f : Structure.Instance.fact) ->
           f.rel = "R" && Structure.Element.equal (List.nth f.args 0) x)
         (Structure.Instance.facts i))
  in
  let ugf = Structure.Unravel.unravel ~variant:UGF ~depth:3 d in
  let ugc = Structure.Unravel.unravel ~variant:UGC2 ~depth:3 d in
  let max_succ u =
    let i = Structure.Unravel.instance u in
    ESet.fold (fun x m -> max m (count_r_succ i x)) (Structure.Instance.domain i) 0
  in
  check "uGF unravelling blows up outdegree" true (max_succ ugf > 3);
  check "uGC2 unravelling preserves outdegree" true (max_succ ugc <= 3)

let test_modelcheck_counting () =
  let d = inst [ ("R", [ "a"; "b" ]); ("R", [ "a"; "c" ]) ] in
  let f n = Logic.Formula.CountGeq (n, "y", atom "R" [ v "x"; v "y" ]) in
  let env = Structure.Modelcheck.env_of_list [ ("x", e "a") ] in
  check ">=1" true (Structure.Modelcheck.eval d env (f 1));
  check ">=2" true (Structure.Modelcheck.eval d env (f 2));
  check ">=3" false (Structure.Modelcheck.eval d env (f 3))

let suite =
  [
    Alcotest.test_case "guarded_sets" `Quick test_guarded_sets;
    Alcotest.test_case "homomorphism" `Quick test_homomorphism;
    Alcotest.test_case "homomorphism_fixed" `Quick test_homomorphism_fixed;
    QCheck_alcotest.to_alcotest test_hom_count_qcheck;
    Alcotest.test_case "gaifman" `Quick test_gaifman;
    Alcotest.test_case "treedec" `Quick test_treedec;
    Alcotest.test_case "disjoint_union" `Quick test_disjoint_union;
    Alcotest.test_case "unravel_chain" `Quick test_unravel_chain;
    Alcotest.test_case "unravel_ugc2" `Quick test_unravel_ugc2;
    Alcotest.test_case "modelcheck_counting" `Quick test_modelcheck_counting;
  ]
