open Helpers
module F = Logic.Formula

let check = Alcotest.(check bool)

let qc = cq ~name:"qc" ~answer:[ "x" ] [ ("C", [ v "x" ]) ]
let d_horn = inst [ ("A", [ "a" ]); ("R", [ "a"; "b" ]) ]

let test_closure () =
  let cl = Rewriting.Typeprog.closure o_horn qc in
  check "closure nonempty" true (Rewriting.Typeprog.size cl > 10);
  (* ternary relations are rejected *)
  let bad = Logic.Ontology.make [ F.Forall ([ "x"; "y"; "z" ], F.Implies (atom "T" [ v "x"; v "y"; v "z" ], atom "A" [ v "x" ])) ] in
  check "ternary rejected" true
    (try
       ignore (Rewriting.Typeprog.closure bad qc);
       false
     with Rewriting.Typeprog.Not_two_variable _ -> true)

let test_agrees_on_horn () =
  (* Theorem 5: for unravelling-tolerant (here: Horn) ontologies the
     type-based rewriting computes the certain answers. *)
  List.iter
    (fun (el, expect) ->
      check
        (Printf.sprintf "C(%s)" (Structure.Element.to_string el))
        expect
        (Rewriting.Typeprog.entails ~extra:2 o_horn qc d_horn [ el ]);
      check "matches bounded certain answers" expect
        (Reasoner.Bounded.certain_cq ~max_extra:2 o_horn d_horn qc [ el ]))
    [ (e "a", true); (e "b", false) ]

let test_inconsistency_answers_all () =
  (* A ⊓ ¬A forced: the empty surviving set answers everything. *)
  let contradiction =
    Logic.Ontology.make
      [ forall_eq "x"
          (F.Implies (atom "D" [ v "x" ], F.And (atom "A" [ v "x" ], F.Not (atom "A" [ v "x" ])))) ]
  in
  let d = inst [ ("D", [ "a" ]); ("R", [ "a"; "b" ]) ] in
  check "everything certain" true
    (Rewriting.Typeprog.entails ~extra:1 contradiction qc d [ e "b" ])

(* Example 6: the rewriting computes the unravelling side of
   Definition 3 — E(a) is refuted on the unravelled triangle even though
   it is certain on the triangle itself. *)
let example6 =
  let phi x = F.Exists ([ "y" ], F.And (atom "R" [ v x; v "y" ], atom "A" [ v "y" ])) in
  let phi_neg x =
    F.Exists ([ "y" ], F.And (atom "R" [ v x; v "y" ], F.Not (atom "A" [ v "y" ])))
  in
  Logic.Ontology.make
    [
      forall_eq "x" (F.Implies (atom "A" [ v "x" ], F.Implies (phi "x", atom "E" [ v "x" ])));
      forall_eq "x"
        (F.Implies (F.Not (atom "A" [ v "x" ]), F.Implies (phi_neg "x", atom "E" [ v "x" ])));
      F.Forall
        ( [ "x"; "y" ],
          F.Implies (atom "R" [ v "x"; v "y" ], F.Implies (atom "E" [ v "x" ], atom "E" [ v "y" ])) );
      F.Forall
        ( [ "x"; "y" ],
          F.Implies (atom "R" [ v "x"; v "y" ], F.Implies (atom "E" [ v "y" ], atom "E" [ v "x" ])) );
    ]

let test_example6_unravelling_side () =
  let tri = inst [ ("R", [ "a"; "b" ]); ("R", [ "b"; "c" ]); ("R", [ "c"; "a" ]) ] in
  let qe = cq ~name:"qe" ~answer:[ "x" ] [ ("E", [ v "x" ]) ] in
  check "certain on the triangle" true
    (Reasoner.Bounded.certain_cq ~max_extra:0 example6 tri qe [ e "a" ]);
  check "rewriting computes the unravelling side" false
    (Rewriting.Typeprog.entails ~extra:1 example6 qe tri [ e "a" ])

let test_statistics () =
  let st = Rewriting.Typeprog.run ~extra:1 o_horn qc d_horn in
  let tuples, survivors = Rewriting.Typeprog.statistics st in
  Alcotest.(check int) "one guarded pair" 1 tuples;
  check "some survivors" true (survivors > 0)

let suite =
  [
    Alcotest.test_case "closure" `Quick test_closure;
    Alcotest.test_case "agrees_on_horn" `Quick test_agrees_on_horn;
    Alcotest.test_case "inconsistency_answers_all" `Quick test_inconsistency_answers_all;
    Alcotest.test_case "example6_unravelling_side" `Quick test_example6_unravelling_side;
    Alcotest.test_case "statistics" `Quick test_statistics;
  ]
