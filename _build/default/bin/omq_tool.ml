(* The command-line front end:

     omq_tool classify ONTOLOGY.dl
     omq_tool eval ONTOLOGY.dl DATA.txt 'q(x) <- Thumb(x)'
     omq_tool fig1
     omq_tool corpus --seed 2017 -n 411
     omq_tool decide ONTOLOGY.dl
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_tbox path =
  try Ok (Dl.Parser.parse_tbox (read_file path)) with
  | Dl.Parser.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" path line message)
  | Dl.Lexer.Lex_error { line; col; message } ->
      Error (Printf.sprintf "%s:%d:%d: %s" path line col message)
  | Sys_error m -> Error m

let ontology_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"ONTOLOGY" ~doc:"DL ontology file (one axiom per line).")

(* ------------------------------------------------------------------ *)

let classify_cmd =
  let run path =
    match load_tbox path with
    | Error m ->
        Fmt.epr "%s@." m;
        1
    | Ok tbox ->
        let o = Dl.Translate.tbox tbox in
        Fmt.pr "DL name:   %s (depth %d)@." (Dl.Tbox.name tbox) (Dl.Tbox.depth tbox);
        (match Gf.Fragment.of_ontology o with
        | Some d -> Fmt.pr "fragment:  %s@." (Gf.Fragment.name d)
        | None -> Fmt.pr "fragment:  outside uGF/uGC2@.");
        let ev = Classify.Landscape.of_tbox tbox in
        Fmt.pr "status:    %a@." Classify.Landscape.pp_evidence ev;
        0
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Locate an ontology in the Figure 1 landscape.")
    Term.(const run $ ontology_arg)

let eval_cmd =
  let data_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DATA" ~doc:"Instance file (one fact per line).")
  in
  let query_arg =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"QUERY" ~doc:"UCQ, e.g. 'q(x) <- Thumb(x)'.")
  in
  let bound_arg =
    Arg.(value & opt int 2 & info [ "max-extra" ] ~doc:"Countermodel domain bound.")
  in
  let run path data query max_extra =
    match load_tbox path with
    | Error m ->
        Fmt.epr "%s@." m;
        1
    | Ok tbox -> (
        try
          let d = Structure.Parse.instance_of_string (read_file data) in
          let q = Query.Parse.ucq_of_string query in
          let omq = Omq.of_tbox tbox q in
          if not (Omq.is_consistent ~max_extra omq d) then begin
            Fmt.pr "instance inconsistent with the ontology: every tuple is an answer@.";
            0
          end
          else begin
            let answers = Omq.certain_answers ~max_extra omq d in
            if Query.Ucq.is_boolean q then
              Fmt.pr "certain: %b@." (answers <> [])
            else begin
              Fmt.pr "%d certain answer(s)@." (List.length answers);
              List.iter
                (fun t ->
                  Fmt.pr "  (%a)@."
                    Fmt.(list ~sep:comma Structure.Element.pp)
                    t)
                answers
            end;
            0
          end
        with
        | Structure.Parse.Parse_error { line; message } ->
            Fmt.epr "%s:%d: %s@." data line message;
            1
        | Query.Parse.Parse_error m ->
            Fmt.epr "query: %s@." m;
            1)
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Certain answers of a UCQ over an instance w.r.t. an ontology.")
    Term.(const run $ ontology_arg $ data_arg $ query_arg $ bound_arg)

let fig1_cmd =
  let run () =
    Fmt.pr "%-18s %-14s %-14s@." "fragment" "computed" "paper";
    List.iter
      (fun (name, (ev : Classify.Landscape.evidence), expected) ->
        Fmt.pr "%-18s %-14s %-14s %s@." name
          (Fmt.str "%a" Classify.Landscape.pp_status ev.status)
          (Fmt.str "%a" Classify.Landscape.pp_status expected)
          (if ev.status = expected then "ok" else "MISMATCH"))
      Classify.Landscape.figure1;
    0
  in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Regenerate the Figure 1 landscape.")
    Term.(const run $ const ())

let corpus_cmd =
  let seed_arg = Arg.(value & opt int 2017 & info [ "seed" ] ~doc:"Corpus seed.") in
  let n_arg = Arg.(value & opt int 411 & info [ "n" ] ~doc:"Corpus size.") in
  let run seed n =
    let corpus = Bioportal.Generate.corpus ~seed ~n () in
    let table = Bioportal.Analyze.tabulate (List.map Bioportal.Analyze.analyze corpus) in
    Fmt.pr "%a@." Bioportal.Analyze.pp_table table;
    let pt, pf, pq = Bioportal.Analyze.paper_reference in
    Fmt.pr "paper reference: %d total, %d in ALCHIF depth 2, %d in ALCHIQ depth 1@." pt pf pq;
    0
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"Generate the synthetic BioPortal corpus and print the Section 1 table.")
    Term.(const run $ seed_arg $ n_arg)

let decide_cmd =
  let out_arg =
    Arg.(value & opt int 5 & info [ "max-outdegree" ] ~doc:"Bouquet outdegree bound.")
  in
  let run path max_outdegree =
    match load_tbox path with
    | Error m ->
        Fmt.epr "%s@." m;
        1
    | Ok tbox -> (
        let o = Dl.Translate.tbox tbox in
        match Classify.Decide.decide ~max_outdegree o with
        | Classify.Decide.Ptime_evidence n ->
            Fmt.pr "PTIME query evaluation (evidence from %d bouquets)@." n;
            0
        | Classify.Decide.Conp_hard w ->
            Fmt.pr "coNP-hard; non-materializable bouquet:@.%a@."
              Structure.Instance.pp w;
            0)
  in
  Cmd.v
    (Cmd.info "decide"
       ~doc:"Decide PTIME query evaluation by bouquet materializability (Theorem 13).")
    Term.(const run $ ontology_arg $ out_arg)

let () =
  let doc = "Ontology-mediated querying with the guarded fragment (PODS'17 reproduction)." in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "omq_tool" ~version:"1.0" ~doc)
          [ classify_cmd; eval_cmd; fig1_cmd; corpus_cmd; decide_cmd ]))
