(** Empirical unravelling tolerance (Definition 3), on depth-bounded
    prefixes of the uGF/uGC2 unravellings. *)

type violation = {
  on_d : bool;
  on_du : bool;
  depth : int;
}

type verdict =
  | Tolerant_on
  | Violation of violation

(** Compare O,D ⊨ q(ā) with O,D{^u} ⊨ q(b̄) at the copy b̄ of ā in the
    root bag of a maximal guarded set containing ā.
    @raise Invalid_argument when ā is not inside any guarded set. *)
val check :
  ?variant:Structure.Unravel.variant ->
  ?depth:int ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Cq.t ->
  Structure.Element.t list ->
  verdict

(** Violations over all elements, for a unary query. *)
val check_unary :
  ?variant:Structure.Unravel.variant ->
  ?depth:int ->
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Cq.t ->
  (Structure.Element.t * violation) list
