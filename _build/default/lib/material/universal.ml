(* Hom-universal models (Section 3, Lemma 2): a model of O and D that
   maps homomorphically into every model of O and D preserving dom(D).
   In uGC2(=) their existence coincides with materializability; the
   paper's uGF(2) wheel ontology separates the notions. Here both sides
   are checked over the enumerated bounded models, so verdicts are
   relative to the domain bound and enumeration limit. *)

let preserving_hom ~source ~target d =
  let fixed =
    Structure.Homomorphism.fixed_identity
      (Structure.Element.Set.inter
         (Structure.Instance.domain d)
         (Structure.Instance.domain target))
  in
  Structure.Homomorphism.exists ~fixed ~source ~target ()

(* A model among the bounded models of O and D that maps into every
   other enumerated model (preserving dom(D)), if one exists. *)
let find_hom_universal ?(extra = 1) ?(limit = 200) o d =
  let models = Reasoner.Bounded.models ~extra ~limit o d in
  List.find_opt
    (fun b ->
      List.for_all (fun a -> preserving_hom ~source:b ~target:a d) models)
    models

(* Is some enumerated bounded model hom-universal among them? *)
let admits_hom_universal ?extra ?limit o d =
  Option.is_some (find_hom_universal ?extra ?limit o d)
