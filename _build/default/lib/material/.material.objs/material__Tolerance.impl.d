lib/material/tolerance.ml: Bool List Query Reasoner Structure
