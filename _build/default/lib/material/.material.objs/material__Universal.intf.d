lib/material/universal.mli: Logic Structure
