lib/material/materializability.mli: Logic Query Structure
