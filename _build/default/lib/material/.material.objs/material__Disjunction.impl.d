lib/material/disjunction.ml: Fmt List Logic Query Reasoner Structure
