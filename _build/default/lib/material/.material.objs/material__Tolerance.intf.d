lib/material/tolerance.mli: Logic Query Structure
