lib/material/universal.ml: List Option Reasoner Structure
