lib/material/materializability.ml: Bool List Logic Option Query Reasoner Structure
