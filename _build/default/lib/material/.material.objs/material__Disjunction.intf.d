lib/material/disjunction.mli: Fmt Logic Query Structure
