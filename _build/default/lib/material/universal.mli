(** Hom-universal models (Section 3, Lemma 2): models mapping
    homomorphically into every model of O and D while preserving
    dom(D). Checked over the enumerated bounded models, so verdicts are
    relative to the bounds. *)

(** A model mapping into every enumerated bounded model. *)
val find_hom_universal :
  ?extra:int ->
  ?limit:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Structure.Instance.t option

val admits_hom_universal :
  ?extra:int -> ?limit:int -> Logic.Ontology.t -> Structure.Instance.t -> bool
