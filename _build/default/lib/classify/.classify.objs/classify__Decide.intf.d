lib/classify/decide.mli: Logic Structure
