lib/classify/landscape.mli: Dl Fmt Gf Logic
