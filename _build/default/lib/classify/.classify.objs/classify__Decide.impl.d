lib/classify/decide.ml: List Logic Material Printf Random Reasoner Structure
