lib/classify/landscape.ml: Dl Fmt Gf List Logic
