(** The complexity landscape of Figure 1. *)

type status =
  | Dichotomy
  | Csp_hard
  | No_dichotomy
  | Unknown

type evidence = {
  status : status;
  fragment : string;
  source : string;
}

val pp_status : status Fmt.t
val pp_evidence : evidence Fmt.t

(** Classify a fragment descriptor: containment in a dichotomy fragment
    first, then inclusion of a no-dichotomy / CSP-hard fragment. *)
val of_fragment : Gf.Fragment.t -> evidence

(** Classify a concrete ontology by its minimal fragment; ontologies in
    full GF report CSP-hardness of the language. *)
val of_ontology : Logic.Ontology.t -> evidence

(** DL-level classification (the grey entries of Figure 1). *)
val of_tbox : Dl.Tbox.t -> evidence

(** The Figure 1 entries: (name, computed classification, the paper's
    classification). The fig1 bench prints and compares them. *)
val figure1 : (string * evidence * status) list
