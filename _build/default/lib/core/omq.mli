(** Ontology-mediated queries (O, q) — the paper's central object — and
    the analyses developed for them. This is the library façade used by
    the examples and the command-line tool. *)

type t = {
  ontology : Logic.Ontology.t;
  query : Query.Ucq.t;
}

val make : Logic.Ontology.t -> Query.Ucq.t -> t
val of_cq : Logic.Ontology.t -> Query.Cq.t -> t

(** Build from a DL TBox via the standard translation. *)
val of_tbox : Dl.Tbox.t -> Query.Ucq.t -> t

(** Certain answer O,D ⊨ q(ā); refutations are exact, confirmations hold
    up to [max_extra] fresh countermodel elements. *)
val certain :
  ?max_extra:int -> t -> Structure.Instance.t -> Structure.Element.t list -> bool

(** All certain answers over the active domain. *)
val certain_answers :
  ?max_extra:int -> t -> Structure.Instance.t -> Structure.Element.t list list

val is_consistent : ?max_extra:int -> t -> Structure.Instance.t -> bool

(** Figure 1 classification of the ontology. *)
val classify : t -> Classify.Landscape.evidence

(** The minimal uGF/uGC2 fragment descriptor. *)
val fragment : t -> Gf.Fragment.t option

(** Materializability on an instance (bounded search). *)
val materializable_on :
  ?extra:int -> ?max_extra:int -> t -> Structure.Instance.t -> bool

(** The Theorem 5 type-based evaluation (single-CQ queries over binary
    signatures). *)
val rewritten_certain :
  ?extra:int -> t -> Structure.Instance.t -> Structure.Element.t list -> bool

(** Theorem 13: decide PTIME query evaluation. *)
val decide_ptime :
  ?seed:int -> ?max_outdegree:int -> ?samples:int -> t -> Classify.Decide.verdict

val pp : t Fmt.t
