(* The public façade: ontology-mediated queries (O, q) and the analyses
   the paper develops for them. Examples and the command-line tool only
   use this module. *)

type t = {
  ontology : Logic.Ontology.t;
  query : Query.Ucq.t;
}

let make ontology query = { ontology; query }
let of_cq ontology cq = { ontology; query = Query.Ucq.of_cq cq }

let of_tbox tbox query = { ontology = Dl.Translate.tbox tbox; query }

(* ------------------------------------------------------------------ *)
(* Semantics                                                            *)
(* ------------------------------------------------------------------ *)

(* Certain answer O,D ⊨ q(ā), up to [max_extra] fresh elements in the
   countermodel search (exact for refutation; GF/GC2 have the finite
   model property, so iterative deepening converges). *)
let certain ?(max_extra = 2) omq d tuple =
  Reasoner.Bounded.certain_ucq ~max_extra omq.ontology d omq.query tuple

(* All certain answers over the active domain. *)
let certain_answers ?(max_extra = 2) omq d =
  let arity = Query.Ucq.arity omq.query in
  let rec tuples k =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun rest ->
          List.map (fun e -> e :: rest) (Structure.Instance.domain_list d))
        (tuples (k - 1))
  in
  List.filter (certain ~max_extra omq d) (tuples arity)

let is_consistent ?(max_extra = 2) omq d =
  Reasoner.Bounded.is_consistent ~max_extra omq.ontology d

(* ------------------------------------------------------------------ *)
(* Analyses                                                             *)
(* ------------------------------------------------------------------ *)

(* Figure 1 classification of the ontology's minimal fragment. *)
let classify omq = Classify.Landscape.of_ontology omq.ontology

(* The minimal uGF/uGC2 fragment descriptor, if any. *)
let fragment omq = Gf.Fragment.of_ontology omq.ontology

(* Materializability of the ontology on a concrete instance. *)
let materializable_on ?extra ?max_extra omq d =
  Material.Materializability.materializable_on ?extra ?max_extra omq.ontology d

(* The Theorem 5 type-based evaluation (binary signatures). *)
let rewritten_certain ?extra omq d tuple =
  match omq.query.Query.Ucq.disjuncts with
  | [ cq ] -> Rewriting.Typeprog.entails ?extra omq.ontology cq d tuple
  | _ -> invalid_arg "rewritten_certain: single-CQ queries only"

(* Theorem 13: decide PTIME query evaluation by bouquet
   materializability. *)
let decide_ptime ?seed ?max_outdegree ?samples omq =
  Classify.Decide.decide ?seed ?max_outdegree ?samples omq.ontology

let pp ppf omq =
  Fmt.pf ppf "@[<v>ontology:@ %a@ query:@ %a@]" Logic.Ontology.pp omq.ontology
    Query.Ucq.pp omq.query
