module ESet = Structure.Element.Set

(* Direct set-theoretic semantics of DL concepts over an interpretation
   (Appendix A), used to cross-validate the FO translation. *)

let role_successors inst role x =
  let matches (f : Structure.Instance.fact) =
    match (role, f.args) with
    | Concept.Name r, [ a; b ] when f.rel = r && Structure.Element.equal a x ->
        Some b
    | Concept.Inv r, [ a; b ] when f.rel = r && Structure.Element.equal b x ->
        Some a
    | _ -> None
  in
  List.fold_left
    (fun acc f -> match matches f with Some y -> ESet.add y acc | None -> acc)
    ESet.empty
    (Structure.Instance.incident x inst)

let rec extension inst c =
  let dom = Structure.Instance.domain inst in
  match c with
  | Concept.Top -> dom
  | Concept.Bot -> ESet.empty
  | Concept.Atomic a ->
      ESet.filter
        (fun x -> Structure.Instance.mem (Structure.Instance.fact a [ x ]) inst)
        dom
  | Concept.Not d -> ESet.diff dom (extension inst d)
  | Concept.And (a, b) -> ESet.inter (extension inst a) (extension inst b)
  | Concept.Or (a, b) -> ESet.union (extension inst a) (extension inst b)
  | Concept.Exists (r, d) ->
      let de = extension inst d in
      ESet.filter
        (fun x -> not (ESet.is_empty (ESet.inter (role_successors inst r x) de)))
        dom
  | Concept.Forall (r, d) ->
      let de = extension inst d in
      ESet.filter (fun x -> ESet.subset (role_successors inst r x) de) dom
  | Concept.AtLeast (n, r, d) ->
      let de = extension inst d in
      ESet.filter
        (fun x ->
          ESet.cardinal (ESet.inter (role_successors inst r x) de) >= n)
        dom
  | Concept.AtMost (n, r, d) ->
      let de = extension inst d in
      ESet.filter
        (fun x ->
          ESet.cardinal (ESet.inter (role_successors inst r x) de) <= n)
        dom

let satisfies_axiom inst = function
  | Tbox.Sub (c, d) -> ESet.subset (extension inst c) (extension inst d)
  | Tbox.RoleSub (r, s) ->
      ESet.for_all
        (fun x ->
          ESet.subset (role_successors inst r x) (role_successors inst s x))
        (Structure.Instance.domain inst)
  | Tbox.Func r ->
      ESet.for_all
        (fun x -> ESet.cardinal (role_successors inst r x) <= 1)
        (Structure.Instance.domain inst)

let is_model inst tbox = List.for_all (satisfies_axiom inst) tbox
