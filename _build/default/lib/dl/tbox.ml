type axiom =
  | Sub of Concept.t * Concept.t
  | RoleSub of Concept.role * Concept.role
  | Func of Concept.role

type t = axiom list

let subsumption c d = Sub (c, d)
let equivalence c d = [ Sub (c, d); Sub (d, c) ]

let concepts t =
  List.concat_map
    (function Sub (c, d) -> [ c; d ] | RoleSub _ | Func _ -> [])
    t

let depth t =
  List.fold_left (fun m c -> max m (Concept.depth c)) 0 (concepts t)

(* DL naming: ALC plus feature letters in the conventional order. *)
type features = {
  h : bool;  (** role inclusions *)
  i : bool;  (** inverse roles *)
  q : bool;  (** qualified number restrictions *)
  f : bool;  (** global partial functions func(R) *)
  f_local : bool;  (** local functionality (≤ 1 R) *)
}

let features t =
  let cs = concepts t in
  {
    h = List.exists (function RoleSub _ -> true | _ -> false) t;
    i =
      List.exists Concept.uses_inverse cs
      || List.exists
           (function
             | RoleSub (r, s) -> (
                 match (r, s) with
                 | Concept.Inv _, _ | _, Concept.Inv _ -> true
                 | _ -> false)
             | Func (Concept.Inv _) -> true
             | _ -> false)
           t;
    q = List.exists Concept.uses_q cs;
    f = List.exists (function Func _ -> true | _ -> false) t;
    f_local = List.exists Concept.uses_local_functionality cs;
  }

let name t =
  let f = features t in
  "ALC"
  ^ (if f.h then "H" else "")
  ^ (if f.i then "I" else "")
  ^ (if f.q then "Q" else "")
  ^ (if f.f then "F" else "")
  ^ if f.f_local then "Fl" else ""

(* Membership tests used by the BioPortal analysis: is every constructor
   within the given DL? *)
let within_alchif t =
  let f = features t in
  not f.q

let within_alchiq _t =
  (* global functionality func(R) is Q-expressible as ⊤ ⊑ (≤ 1 R ⊤),
     so every TBox in this AST lies within ALCHIQ *)
  true

let signature t =
  let concept_names =
    List.fold_left
      (fun acc c -> Logic.Names.SSet.union acc (Concept.atomic_concepts c))
      Logic.Names.SSet.empty (concepts t)
  in
  let role_names =
    List.fold_left
      (fun acc ax ->
        let rs =
          match ax with
          | Sub (c, d) -> Concept.roles c @ Concept.roles d
          | RoleSub (r, s) -> [ r; s ]
          | Func r -> [ r ]
        in
        List.fold_left
          (fun acc r -> Logic.Names.SSet.add (Concept.role_name r) acc)
          acc rs)
      Logic.Names.SSet.empty t
  in
  let s =
    Logic.Names.SSet.fold
      (fun a acc -> Logic.Signature.add a 1 acc)
      concept_names Logic.Signature.empty
  in
  Logic.Names.SSet.fold (fun r acc -> Logic.Signature.add r 2 acc) role_names s

let pp_axiom ppf = function
  | Sub (c, d) -> Fmt.pf ppf "%a << %a" Concept.pp c Concept.pp d
  | RoleSub (r, s) ->
      Fmt.pf ppf "role %a << %a" Concept.pp_role r Concept.pp_role s
  | Func r -> Fmt.pf ppf "func %a" Concept.pp_role r

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_axiom) t
