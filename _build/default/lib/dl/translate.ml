module F = Logic.Formula
module T = Logic.Term

(* The standard translation ·* of DL concepts into the two-variable
   guarded fragment (Appendix A): concepts become openGF / openGC2
   formulas with one free variable, alternating between the two
   variables "x" and "y". Smart constructors collapse Top/Bot so the
   output stays inside the fragment. *)

let other = function "x" -> "y" | _ -> "x"

let role_atom role cur nxt =
  match role with
  | Concept.Name r -> F.atom r [ T.Var cur; T.Var nxt ]
  | Concept.Inv r -> F.atom r [ T.Var nxt; T.Var cur ]

let rec concept_formula c cur =
  let nxt = other cur in
  match c with
  | Concept.Top -> F.tru
  | Concept.Bot -> F.fls
  | Concept.Atomic a -> F.atom a [ T.Var cur ]
  | Concept.Not d -> F.neg (concept_formula d cur)
  | Concept.And (a, b) ->
      F.conj2 (concept_formula a cur) (concept_formula b cur)
  | Concept.Or (a, b) ->
      F.disj2 (concept_formula a cur) (concept_formula b cur)
  | Concept.Exists (r, d) ->
      F.exists [ nxt ] (F.conj2 (role_atom r cur nxt) (concept_formula d nxt))
  | Concept.Forall (r, d) -> (
      match concept_formula d nxt with
      (* ∀R.⊥ is ¬∃y R(x,y), keeping the formula guarded *)
      | F.False -> F.neg (F.exists [ nxt ] (role_atom r cur nxt))
      | body -> F.forall [ nxt ] (F.implies (role_atom r cur nxt) body))
  | Concept.AtLeast (n, r, d) ->
      F.count_geq n nxt (F.conj2 (role_atom r cur nxt) (concept_formula d nxt))
  | Concept.AtMost (n, r, d) ->
      F.neg
        (F.count_geq (n + 1) nxt
           (F.conj2 (role_atom r cur nxt) (concept_formula d nxt)))

(* C ⊑ D becomes the uGF−/uGC− sentence ∀x (x = x → (C*(x) → D*(x))). *)
let axiom_sentence = function
  | Tbox.Sub (c, d) -> (
      let body =
        match (concept_formula c "x", concept_formula d "x") with
        (* C ⊑ ⊥ is ¬C*(x), keeping subformulas open *)
        | cf, F.False -> F.neg cf
        | cf, df -> F.implies cf df
      in
      match body with
      | F.True -> None
      | _ ->
          Some
            (F.Forall
               ( [ "x" ],
                 F.Implies (F.Eq (T.Var "x", T.Var "x"), body) )))
  | Tbox.RoleSub (r, s) ->
      (* ∀x (x = x → ∀y (r(x,y) → s(x,y))): depth 1, equality-guarded
         outermost quantifier, as in Lemma 7. *)
      Some
        (F.Forall
           ( [ "x" ],
             F.Implies
               ( F.Eq (T.Var "x", T.Var "x"),
                 F.Forall
                   ( [ "y" ],
                     F.Implies (role_atom r "x" "y", role_atom s "x" "y") ) )
           ))
  | Tbox.Func _ -> None

(* Inverse functionality as an explicit FO axiom
   ∀x y1 y2 (R(y1,x) ∧ R(y2,x) → y1 = y2). *)
let inverse_functionality_axiom r =
  F.Forall
    ( [ "x"; "y1"; "y2" ],
      F.Implies
        ( F.And
            ( F.atom r [ T.Var "y1"; T.Var "x" ],
              F.atom r [ T.Var "y2"; T.Var "x" ] ),
          F.Eq (T.Var "y1", T.Var "y2") ) )

let tbox (t : Tbox.t) =
  let sentences = List.filter_map axiom_sentence t in
  let functional =
    List.filter_map
      (function Tbox.Func (Concept.Name r) -> Some r | _ -> None)
      t
  in
  let inverse_func =
    List.filter_map
      (function
        | Tbox.Func (Concept.Inv r) -> Some (inverse_functionality_axiom r)
        | _ -> None)
      t
  in
  Logic.Ontology.make ~functional (sentences @ inverse_func)
