(* Depth-1 normalisation: the straightforward polynomial-time
   construction of a conservative extension of depth one mentioned after
   Example 3 of the paper. Every filler of depth ≥ 1 under a role
   restriction is replaced by a fresh atomic concept defined by two
   inclusion axioms. *)

(* Abstract deep fillers in one concept; definitions are emitted as
   axioms whose right/left sides may still be deep (the caller loops). *)
let rec abstract_fillers cache c =
  match c with
  | Concept.Top | Concept.Bot | Concept.Atomic _ -> (c, [])
  | Concept.Not d ->
      let d', defs = abstract_fillers cache d in
      (Concept.Not d', defs)
  | Concept.And (a, b) ->
      let a', da = abstract_fillers cache a in
      let b', db = abstract_fillers cache b in
      (Concept.And (a', b'), da @ db)
  | Concept.Or (a, b) ->
      let a', da = abstract_fillers cache a in
      let b', db = abstract_fillers cache b in
      (Concept.Or (a', b'), da @ db)
  | Concept.Exists (r, f) ->
      let f', defs = name_filler cache f in
      (Concept.Exists (r, f'), defs)
  | Concept.Forall (r, f) ->
      let f', defs = name_filler cache f in
      (Concept.Forall (r, f'), defs)
  | Concept.AtLeast (n, r, f) ->
      let f', defs = name_filler cache f in
      (Concept.AtLeast (n, r, f'), defs)
  | Concept.AtMost (n, r, f) ->
      let f', defs = name_filler cache f in
      (Concept.AtMost (n, r, f'), defs)

and name_filler cache f =
  if Concept.depth f = 0 then (f, [])
  else
    match Hashtbl.find_opt cache f with
    | Some a -> (Concept.Atomic a, [])
    | None ->
        let a = Logic.Names.gensym "Def" in
        Hashtbl.replace cache f a;
        ( Concept.Atomic a,
          [ Tbox.Sub (Concept.Atomic a, f); Tbox.Sub (f, Concept.Atomic a) ] )

(* Normalise a TBox so that every axiom has depth ≤ 1. The result is a
   conservative extension: fresh names are defined to be equivalent to
   the concepts they abbreviate. *)
let to_depth_one (t : Tbox.t) =
  let cache = Hashtbl.create 16 in
  let rec work acc = function
    | [] -> List.rev acc
    | Tbox.Sub (c, d) :: rest
      when Concept.depth c > 1 || Concept.depth d > 1 ->
        let c', dc = abstract_fillers cache c in
        let d', dd = abstract_fillers cache d in
        work (Tbox.Sub (c', d') :: acc) (dc @ dd @ rest)
    | ax :: rest -> work (ax :: acc) rest
  in
  work [] t
