(** The standard translation of DL ontologies into uGF2 / uGC2
    (Appendix A, Lemma 7): a concept [C] becomes an openGF/openGC2
    formula C*(x) with two variables overall, and C ⊑ D becomes
    ∀x (x = x → (C*(x) → D*(x))), so an ALCHIQ ontology of depth [n]
    becomes a uGC{^ −}{_2} ontology of depth [n]. *)

(** C*(cur), alternating between the variables "x" and "y". *)
val concept_formula : Concept.t -> string -> Logic.Formula.t

(** The sentence of one axiom; [None] for [Func] (handled separately)
    and for trivial inclusions. *)
val axiom_sentence : Tbox.axiom -> Logic.Formula.t option

(** ∀x y1 y2 (R(y1,x) ∧ R(y2,x) → y1 = y2). *)
val inverse_functionality_axiom : string -> Logic.Formula.t

(** Translate a whole TBox; [Func (Name r)] becomes a functional
    declaration, [Func (Inv r)] an explicit inverse-functionality
    axiom. *)
val tbox : Tbox.t -> Logic.Ontology.t
