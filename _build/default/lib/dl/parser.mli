(** Parser for the DL concrete syntax (one axiom per line):

    {v
    Hand << exists hasFinger . Thumb
    Hand << >= 5 hasFinger
    role hasFinger << hasPart
    func hasFinger
    v} *)

exception Parse_error of { line : int; message : string }

(** Parse an ontology text.
    @raise Parse_error / {!Lexer.Lex_error} on malformed input. *)
val parse_tbox : string -> Tbox.t

(** Parse a single concept expression. *)
val parse_concept : string -> Concept.t
