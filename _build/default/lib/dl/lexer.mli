(** Line-based lexer for the DL concrete syntax. *)

type token =
  | IDENT of string
  | NUM of int
  | SUBSUMES
  | LEQ
  | GEQ
  | EXACT
  | DOT
  | LPAREN
  | RPAREN
  | MINUS
  | EOF

exception Lex_error of { line : int; col : int; message : string }

val pp_token : token Fmt.t

(** Tokenise one line ('#' starts a comment).
    @raise Lex_error on unexpected characters. *)
val tokenize : line:int -> string -> token list
