(** Description logic concepts for ALC and its extensions by inverse
    roles (I), qualified number restrictions (Q), and local
    functionality (F`), cf. Appendix A of the paper. *)

type role =
  | Name of string
  | Inv of string

val role_name : role -> string
val invert : role -> role
val pp_role : role Fmt.t

type t =
  | Top
  | Bot
  | Atomic of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Exists of role * t
  | Forall of role * t
  | AtLeast of int * role * t
  | AtMost of int * role * t

(** (≤ 1 R), i.e. AtMost (1, r, Top): the F` constructor. *)
val leq_one : role -> t

(** (= n R C) as a conjunction of AtLeast and AtMost. *)
val exactly : int -> role -> t -> t

val conj : t list -> t
val disj : t list -> t

(** Maximal nesting depth of ∃R / ∀R / number restrictions. *)
val depth : t -> int

val atomic_concepts : t -> Logic.Names.SSet.t
val roles : t -> role list
val uses_inverse : t -> bool

(** Qualified number restrictions other than (≤ 1 R ⊤) and (≥ 1 R C). *)
val uses_q : t -> bool

val uses_local_functionality : t -> bool

(** Negation normal form (number restrictions absorb negation). *)
val nnf : t -> t

val pp : t Fmt.t
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
