(** DL ontologies (TBoxes): concept inclusions, role inclusions (H),
    global functionality assertions (F). *)

type axiom =
  | Sub of Concept.t * Concept.t
  | RoleSub of Concept.role * Concept.role
  | Func of Concept.role

type t = axiom list

val subsumption : Concept.t -> Concept.t -> axiom
val equivalence : Concept.t -> Concept.t -> axiom list
val concepts : t -> Concept.t list

(** Maximal concept depth over all axioms. *)
val depth : t -> int

type features = {
  h : bool;
  i : bool;
  q : bool;
  f : bool;
  f_local : bool;
}

val features : t -> features

(** Conventional DL name, e.g. ["ALCHIQ"], with local functionality
    rendered as ["Fl"]. *)
val name : t -> string

(** No qualified number restrictions (beyond F`): inside ALCHIF(F`). *)
val within_alchif : t -> bool

(** Inside ALCHIQ — always true for this AST, since global
    functionality is Q-expressible as ⊤ ⊑ (≤ 1 R ⊤). *)
val within_alchiq : t -> bool

(** Unary relations for concept names, binary for roles. *)
val signature : t -> Logic.Signature.t

val pp_axiom : axiom Fmt.t
val pp : t Fmt.t
