lib/dl/semantics.mli: Concept Structure Tbox
