lib/dl/parser.mli: Concept Tbox
