lib/dl/normalize.mli: Tbox
