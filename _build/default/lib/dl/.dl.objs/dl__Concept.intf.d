lib/dl/concept.mli: Fmt Logic
