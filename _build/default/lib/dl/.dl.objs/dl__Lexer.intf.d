lib/dl/lexer.mli: Fmt
