lib/dl/semantics.ml: Concept List Structure Tbox
