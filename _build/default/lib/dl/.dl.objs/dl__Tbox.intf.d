lib/dl/tbox.mli: Concept Fmt Logic
