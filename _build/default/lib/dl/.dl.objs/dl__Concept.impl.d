lib/dl/concept.ml: Fmt List Logic Stdlib
