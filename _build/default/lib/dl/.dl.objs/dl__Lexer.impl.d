lib/dl/lexer.ml: Fmt List Printf String
