lib/dl/translate.mli: Concept Logic Tbox
