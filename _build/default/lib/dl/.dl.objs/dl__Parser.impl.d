lib/dl/parser.ml: Concept Fmt Lexer List String Tbox
