lib/dl/tbox.ml: Concept Fmt List Logic
