lib/dl/normalize.ml: Concept Hashtbl List Logic Tbox
