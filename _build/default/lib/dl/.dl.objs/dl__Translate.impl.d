lib/dl/translate.ml: Concept List Logic Tbox
