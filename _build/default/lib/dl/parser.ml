(* Recursive-descent parser for the DL concrete syntax. One axiom per
   line:

     C << D                  concept inclusion
     role r << s             role inclusion
     func r                  (partial) functionality;  r- for inverses

   Concepts:

     disj   := conj ('or' conj)*
     conj   := unary ('and' unary)*
     unary  := 'not' unary | 'exists' role '.' unary
             | 'forall' role '.' unary
             | '>=' NUM role ['.' unary] | '<=' NUM role ['.' unary]
             | '==' NUM role ['.' unary]
             | '(' disj ')' | 'Top' | 'Bot' | IDENT
     role   := IDENT ['-']
*)

exception Parse_error of { line : int; message : string }

type state = {
  mutable toks : Lexer.token list;
  line : int;
}

let error st message = raise (Parse_error { line = st.line; message })

let peek st = match st.toks with t :: _ -> t | [] -> Lexer.EOF

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok what =
  if peek st = tok then advance st
  else
    error st
      (Fmt.str "expected %s but found %a" what Lexer.pp_token (peek st))

let parse_role st =
  match peek st with
  | Lexer.IDENT r ->
      advance st;
      if peek st = Lexer.MINUS then begin
        advance st;
        Concept.Inv r
      end
      else Concept.Name r
  | t -> error st (Fmt.str "expected a role name, found %a" Lexer.pp_token t)

let parse_restriction_filler st parse_unary =
  if peek st = Lexer.DOT then begin
    advance st;
    parse_unary st
  end
  else Concept.Top

let rec parse_disj st =
  let c = parse_conj st in
  let rec loop acc =
    match peek st with
    | Lexer.IDENT "or" ->
        advance st;
        loop (Concept.Or (acc, parse_conj st))
    | _ -> acc
  in
  loop c

and parse_conj st =
  let c = parse_unary st in
  let rec loop acc =
    match peek st with
    | Lexer.IDENT "and" ->
        advance st;
        loop (Concept.And (acc, parse_unary st))
    | _ -> acc
  in
  loop c

and parse_unary st =
  match peek st with
  | Lexer.IDENT "not" ->
      advance st;
      Concept.Not (parse_unary st)
  | Lexer.IDENT "exists" ->
      advance st;
      let r = parse_role st in
      expect st Lexer.DOT "'.'";
      Concept.Exists (r, parse_unary st)
  | Lexer.IDENT "forall" ->
      advance st;
      let r = parse_role st in
      expect st Lexer.DOT "'.'";
      Concept.Forall (r, parse_unary st)
  | Lexer.GEQ ->
      advance st;
      let n = parse_num st in
      let r = parse_role st in
      Concept.AtLeast (n, r, parse_restriction_filler st parse_unary)
  | Lexer.LEQ ->
      advance st;
      let n = parse_num st in
      let r = parse_role st in
      Concept.AtMost (n, r, parse_restriction_filler st parse_unary)
  | Lexer.EXACT ->
      advance st;
      let n = parse_num st in
      let r = parse_role st in
      let f = parse_restriction_filler st parse_unary in
      Concept.exactly n r f
  | Lexer.LPAREN ->
      advance st;
      let c = parse_disj st in
      expect st Lexer.RPAREN "')'";
      c
  | Lexer.IDENT "Top" ->
      advance st;
      Concept.Top
  | Lexer.IDENT "Bot" ->
      advance st;
      Concept.Bot
  | Lexer.IDENT a ->
      advance st;
      Concept.Atomic a
  | t -> error st (Fmt.str "expected a concept, found %a" Lexer.pp_token t)

and parse_num st =
  match peek st with
  | Lexer.NUM n ->
      advance st;
      n
  | t -> error st (Fmt.str "expected a number, found %a" Lexer.pp_token t)

let parse_axiom_line st =
  match peek st with
  | Lexer.IDENT "role" ->
      advance st;
      let r = parse_role st in
      expect st Lexer.SUBSUMES "'<<'";
      let s = parse_role st in
      expect st Lexer.EOF "end of line";
      Tbox.RoleSub (r, s)
  | Lexer.IDENT "func" ->
      advance st;
      let r = parse_role st in
      expect st Lexer.EOF "end of line";
      Tbox.Func r
  | _ ->
      let c = parse_disj st in
      expect st Lexer.SUBSUMES "'<<'";
      let d = parse_disj st in
      expect st Lexer.EOF "end of line";
      Tbox.Sub (c, d)

(* Parse a whole ontology text, one axiom per non-empty line. *)
let parse_tbox text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i raw ->
         let line = i + 1 in
         let toks = Lexer.tokenize ~line raw in
         match toks with
         | [ Lexer.EOF ] -> []
         | _ -> [ parse_axiom_line { toks; line } ])
       lines)

let parse_concept text =
  let st = { toks = Lexer.tokenize ~line:1 text; line = 1 } in
  let c = parse_disj st in
  expect st Lexer.EOF "end of input";
  c
