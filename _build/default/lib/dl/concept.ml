type role =
  | Name of string
  | Inv of string

let role_name = function Name r | Inv r -> r
let invert = function Name r -> Inv r | Inv r -> Name r

let pp_role ppf = function
  | Name r -> Fmt.string ppf r
  | Inv r -> Fmt.pf ppf "%s-" r

type t =
  | Top
  | Bot
  | Atomic of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Exists of role * t
  | Forall of role * t
  | AtLeast of int * role * t
  | AtMost of int * role * t

(* Sugar *)
let leq_one r = AtMost (1, r, Top)
let exactly n r c = And (AtLeast (n, r, c), AtMost (n, r, c))

let conj = function [] -> Top | c :: cs -> List.fold_left (fun a b -> And (a, b)) c cs
let disj = function [] -> Bot | c :: cs -> List.fold_left (fun a b -> Or (a, b)) c cs

let rec depth = function
  | Top | Bot | Atomic _ -> 0
  | Not c -> depth c
  | And (a, b) | Or (a, b) -> max (depth a) (depth b)
  | Exists (_, c) | Forall (_, c) | AtLeast (_, _, c) | AtMost (_, _, c) ->
      1 + depth c

let rec atomic_concepts = function
  | Top | Bot -> Logic.Names.SSet.empty
  | Atomic a -> Logic.Names.SSet.singleton a
  | Not c -> atomic_concepts c
  | And (a, b) | Or (a, b) ->
      Logic.Names.SSet.union (atomic_concepts a) (atomic_concepts b)
  | Exists (_, c) | Forall (_, c) | AtLeast (_, _, c) | AtMost (_, _, c) ->
      atomic_concepts c

let rec roles = function
  | Top | Bot | Atomic _ -> []
  | Not c -> roles c
  | And (a, b) | Or (a, b) -> roles a @ roles b
  | Exists (r, c) | Forall (r, c) | AtLeast (_, r, c) | AtMost (_, r, c) ->
      r :: roles c

(* Feature detection for DL naming. *)
let rec uses_inverse = function
  | Top | Bot | Atomic _ -> false
  | Not c -> uses_inverse c
  | And (a, b) | Or (a, b) -> uses_inverse a || uses_inverse b
  | Exists (r, c) | Forall (r, c) | AtLeast (_, r, c) | AtMost (_, r, c) ->
      (match r with Inv _ -> true | Name _ -> false) || uses_inverse c

(* Qualified number restrictions beyond local functionality (≤ 1 R ⊤). *)
let rec uses_q = function
  | Top | Bot | Atomic _ -> false
  | Not c -> uses_q c
  | And (a, b) | Or (a, b) -> uses_q a || uses_q b
  | Exists (_, c) | Forall (_, c) -> uses_q c
  | AtMost (1, _, Top) -> false
  | AtLeast (1, _, c) -> uses_q c
  | AtLeast (_, _, _) | AtMost (_, _, _) -> true

(* Local functionality (≤ 1 R ⊤), the F-ell feature. *)
let rec uses_local_functionality = function
  | Top | Bot | Atomic _ -> false
  | Not c -> uses_local_functionality c
  | And (a, b) | Or (a, b) ->
      uses_local_functionality a || uses_local_functionality b
  | Exists (_, c) | Forall (_, c) -> uses_local_functionality c
  | AtMost (1, _, Top) -> true
  | AtLeast (_, _, c) | AtMost (_, _, c) -> uses_local_functionality c

(* Negation normal form. *)
let rec nnf = function
  | (Top | Bot | Atomic _) as c -> c
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Exists (r, c) -> Exists (r, nnf c)
  | Forall (r, c) -> Forall (r, nnf c)
  | AtLeast (n, r, c) -> AtLeast (n, r, nnf c)
  | AtMost (n, r, c) -> AtMost (n, r, nnf c)
  | Not c -> (
      match c with
      | Top -> Bot
      | Bot -> Top
      | Atomic _ -> Not c
      | Not d -> nnf d
      | And (a, b) -> Or (nnf (Not a), nnf (Not b))
      | Or (a, b) -> And (nnf (Not a), nnf (Not b))
      | Exists (r, d) -> Forall (r, nnf (Not d))
      | Forall (r, d) -> Exists (r, nnf (Not d))
      | AtLeast (n, r, d) -> AtMost (n - 1, r, nnf d)
      | AtMost (n, r, d) -> AtLeast (n + 1, r, nnf d))

let rec pp ppf = function
  | Top -> Fmt.string ppf "Top"
  | Bot -> Fmt.string ppf "Bot"
  | Atomic a -> Fmt.string ppf a
  | Not c -> Fmt.pf ppf "not %a" pp_paren c
  | And (a, b) -> Fmt.pf ppf "%a and %a" pp_paren a pp_paren b
  | Or (a, b) -> Fmt.pf ppf "%a or %a" pp_paren a pp_paren b
  | Exists (r, c) -> Fmt.pf ppf "exists %a. %a" pp_role r pp_paren c
  | Forall (r, c) -> Fmt.pf ppf "forall %a. %a" pp_role r pp_paren c
  | AtLeast (n, r, c) -> Fmt.pf ppf ">=%d %a. %a" n pp_role r pp_paren c
  | AtMost (n, r, c) -> Fmt.pf ppf "<=%d %a. %a" n pp_role r pp_paren c

and pp_paren ppf c =
  match c with
  | Top | Bot | Atomic _ | Not _ -> pp ppf c
  | _ -> Fmt.pf ppf "(%a)" pp c

let to_string c = Fmt.str "%a" pp c
let compare = Stdlib.compare
let equal a b = compare a b = 0
