(** Direct set-theoretic semantics of DL concepts and axioms over finite
    interpretations (Appendix A). Used to cross-validate the FO
    translation {!Translate}. *)

val role_successors :
  Structure.Instance.t -> Concept.role -> Structure.Element.t -> Structure.Element.Set.t

(** C{^ A}: the extension of a concept. *)
val extension : Structure.Instance.t -> Concept.t -> Structure.Element.Set.t

val satisfies_axiom : Structure.Instance.t -> Tbox.axiom -> bool
val is_model : Structure.Instance.t -> Tbox.t -> bool
