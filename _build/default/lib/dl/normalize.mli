(** Depth-1 normalisation of TBoxes: the polynomial conservative
    extension of depth one (remark after Example 3 of the paper). Deep
    fillers are replaced by fresh defined concept names. *)

val to_depth_one : Tbox.t -> Tbox.t
