lib/structure/modelcheck.mli: Element Instance Logic
