lib/structure/unravel.mli: Element Instance
