lib/structure/instance.ml: Element Fmt List Logic Option Set Stdlib
