lib/structure/gaifman.mli: Element Instance
