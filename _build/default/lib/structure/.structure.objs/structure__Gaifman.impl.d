lib/structure/gaifman.ml: Element Hashtbl Instance List Option Queue
