lib/structure/homomorphism.ml: Element Gaifman Hashtbl Instance List Option
