lib/structure/homomorphism.mli: Element Instance
