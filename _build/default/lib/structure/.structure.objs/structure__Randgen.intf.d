lib/structure/randgen.mli: Element Instance Logic Random
