lib/structure/element.mli: Fmt Map Set
