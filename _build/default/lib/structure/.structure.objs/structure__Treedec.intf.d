lib/structure/treedec.mli: Element Instance
