lib/structure/instance.mli: Element Fmt Logic Set
