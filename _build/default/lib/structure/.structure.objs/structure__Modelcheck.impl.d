lib/structure/modelcheck.ml: Element Instance List Logic
