lib/structure/guarded.ml: Element Instance List
