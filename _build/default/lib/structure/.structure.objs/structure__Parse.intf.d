lib/structure/parse.mli: Instance
