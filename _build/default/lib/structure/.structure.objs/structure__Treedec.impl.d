lib/structure/treedec.ml: Array Element Fun Gaifman Guarded Hashtbl Instance List Option
