lib/structure/element.ml: Fmt Map Set Stdlib
