lib/structure/randgen.ml: Element Instance List Logic Printf Random
