lib/structure/unravel.ml: Array Element Guarded Instance List Option Printf
