lib/structure/guarded.mli: Element Instance
