lib/structure/parse.ml: Element Instance List String
