(** Unravellings of instances into (bounded prefixes of) cg-tree
    decomposable instances (Section 4).

    The uGF-unravelling follows conditions (a) G{_i} ≠ G{_i+1},
    (b) G{_i} ∩ G{_i+1} ≠ ∅, (c) G{_i-1} ≠ G{_i+1} over sequences of
    maximal guarded sets; the uGC2-unravelling strengthens (c) to
    (c') G{_i} ∩ G{_i-1} ≠ G{_i} ∩ G{_i+1}, which preserves successor
    counts. The paper's unravellings are infinite; here they are cut at a
    caller-supplied number of expansion steps. *)

type variant = UGF | UGC2

type t

(** [unravel ~variant ~depth d] builds the bounded unravelling of [d].
    [depth] is the maximal number of expansion steps (sequence length
    minus one). *)
val unravel : ?variant:variant -> depth:int -> Instance.t -> t

(** The unravelled instance D{^u}. *)
val instance : t -> Instance.t

(** The map e ↦ e{^ ↑} from copies back to original elements. *)
val up_map : t -> Element.t Element.Map.t

(** Same as {!up_map}; it is a homomorphism from D{^u} onto D. *)
val up_homomorphism : t -> Element.t Element.Map.t

(** [root_copy t g] is the original→copy bijection of the root bag for
    the maximal guarded set [g] (Definition 3 evaluates queries at the
    copy of a tuple in bag(G)). *)
val root_copy : t -> Element.Set.t -> Element.t Element.Map.t option
