(** Finite-model evaluation of FO(=, counting) formulas over
    interpretations. Quantifiers range over the full domain; complexity is
    exponential in quantifier width, which is fine for the small
    structures used in tests and bounded experiments. *)

type env = Element.t Logic.Names.SMap.t

exception Unbound_variable of string

(** [eval inst env f] evaluates [f] under the variable assignment [env].
    @raise Unbound_variable on a free variable missing from [env]. *)
val eval : Instance.t -> env -> Logic.Formula.t -> bool

(** [holds inst f] evaluates a sentence.
    @raise Invalid_argument if [f] has free variables. *)
val holds : Instance.t -> Logic.Formula.t -> bool

(** [is_model inst fs] checks all sentences of [fs]. *)
val is_model : Instance.t -> Logic.Formula.t list -> bool

val env_of_list : (string * Element.t) list -> env
