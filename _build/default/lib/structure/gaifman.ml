module ESet = Element.Set
module EMap = Element.Map

type t = ESet.t EMap.t

let of_instance inst =
  let add_edge a b g =
    let cur = Option.value (EMap.find_opt a g) ~default:ESet.empty in
    EMap.add a (ESet.add b cur) g
  in
  let add_fact g (f : Instance.fact) =
    List.fold_left
      (fun g a ->
        List.fold_left
          (fun g b -> if Element.equal a b then g else add_edge a b g)
          g f.args)
      g f.args
  in
  let base =
    ESet.fold
      (fun e g -> EMap.add e ESet.empty g)
      (Instance.domain inst) EMap.empty
  in
  List.fold_left add_fact base (Instance.facts inst)

let neighbours g e = Option.value (EMap.find_opt e g) ~default:ESet.empty

let bfs_distances g source =
  let dist = Hashtbl.create 16 in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if not (Hashtbl.mem dist s) then (
        Hashtbl.replace dist s 0;
        Queue.add s q))
    source;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let d = Hashtbl.find dist u in
    ESet.iter
      (fun v ->
        if not (Hashtbl.mem dist v) then (
          Hashtbl.replace dist v (d + 1);
          Queue.add v q))
      (neighbours g u)
  done;
  dist

let distance g a b =
  let dist = bfs_distances g [ a ] in
  Hashtbl.find_opt dist b

let connected_components g =
  let seen = Hashtbl.create 16 in
  EMap.fold
    (fun e _ comps ->
      if Hashtbl.mem seen e then comps
      else begin
        let dist = bfs_distances g [ e ] in
        let comp =
          Hashtbl.fold (fun v _ acc -> ESet.add v acc) dist ESet.empty
        in
        ESet.iter (fun v -> Hashtbl.replace seen v ()) comp;
        comp :: comps
      end)
    g []

let is_connected g =
  match connected_components g with [] | [ _ ] -> true | _ -> false

(* Distance from set [xs] to set [ys] (Definition 6). *)
let set_distance g xs ys =
  if ESet.is_empty xs || ESet.is_empty ys then None
  else
    let dist = bfs_distances g (ESet.elements xs) in
    ESet.fold
      (fun y best ->
        match (Hashtbl.find_opt dist y, best) with
        | None, b -> b
        | Some d, None -> Some d
        | Some d, Some b -> Some (min d b))
      ys None
