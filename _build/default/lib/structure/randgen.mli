(** Seeded random instance generation for tests and experiments. *)

(** [elements n] is the constants c0 … c{n-1}. *)
val elements : int -> Element.t list

(** All [k]-tuples over a domain. *)
val tuples : Element.t list -> int -> Element.t list list

(** [instance ~rng ~signature ~size ~p] draws each possible fact over
    [size] constants independently with probability [p]. *)
val instance :
  rng:Random.State.t ->
  signature:Logic.Signature.t ->
  size:int ->
  p:float ->
  Instance.t

(** As {!instance} but guarantees at least one fact when the signature is
    non-empty. *)
val nonempty_instance :
  rng:Random.State.t ->
  signature:Logic.Signature.t ->
  size:int ->
  p:float ->
  Instance.t
