(** Guarded tree decompositions through hypergraph acyclicity
    (Section 2.2). An instance has a guarded tree decomposition iff the
    hypergraph of its fact argument sets is alpha-acyclic (GYO). *)

type join_tree = {
  bags : Element.Set.t array;
  parents : int option array;
}

(** Alpha-acyclicity of a hypergraph by the GYO reduction. *)
val is_alpha_acyclic : Element.Set.t list -> bool

(** A join tree over the given edges, or [None] when cyclic. *)
val join_tree : Element.Set.t list -> join_tree option

(** Distinct fact argument sets of an instance. *)
val edges_of_instance : Instance.t -> Element.Set.t list

val is_guarded_tree_decomposable : Instance.t -> bool

(** Guarded tree decomposable with a connected Gaifman graph. *)
val is_cg_tree_decomposable : Instance.t -> bool

(** Existence of a connected guarded tree decomposition whose root bag is
    exactly [root] (used to recognise rooted acyclic queries). *)
val is_rooted_decomposable : Instance.t -> root:Element.Set.t -> bool
