module ESet = Element.Set

(* A set G is guarded if it is a singleton or contained in the argument
   set of some fact (Section 2.2). *)
let is_guarded t g =
  match ESet.cardinal g with
  | 0 -> false
  | 1 -> ESet.subset g (Instance.domain t)
  | _ -> (
      match ESet.choose_opt g with
      | None -> false
      | Some e ->
          List.exists
            (fun (f : Instance.fact) ->
              ESet.subset g (ESet.of_list f.args))
            (Instance.incident e t))

let is_guarded_tuple t args = is_guarded t (ESet.of_list args)

(* All guarded sets arising from facts (argument sets), plus singletons. *)
let all_guarded_sets t =
  let from_facts =
    List.fold_left
      (fun acc (f : Instance.fact) ->
        let s = ESet.of_list f.args in
        if ESet.is_empty s then acc else s :: acc)
      [] (Instance.facts t)
  in
  let singletons =
    List.map ESet.singleton (Instance.domain_list t)
  in
  List.sort_uniq ESet.compare (from_facts @ singletons)

(* Maximal guarded sets under set inclusion. *)
let maximal_guarded_sets t =
  let sets = all_guarded_sets t in
  List.filter
    (fun g ->
      not
        (List.exists
           (fun g' -> (not (ESet.equal g g')) && ESet.subset g g')
           sets))
    sets

(* The 1-neighbourhood of [a]: union of all guarded sets containing [a]
   (used for bouquets, Section 8). *)
let one_neighbourhood t a =
  let union_sets =
    List.fold_left
      (fun acc (f : Instance.fact) -> ESet.union acc (ESet.of_list f.args))
      (ESet.singleton a) (Instance.incident a t)
  in
  Instance.restrict union_sets t

(* A bouquet with root [a] is an instance equal to the 1-neighbourhood of
   its root. *)
let is_bouquet t a =
  Instance.equal t (one_neighbourhood t a)
  && ESet.mem a (Instance.domain t)

let is_irreflexive t =
  not
    (List.exists
       (fun (f : Instance.fact) ->
         match f.args with [ x; y ] -> Element.equal x y | _ -> false)
       (Instance.facts t))

(* Outdegree of a binary-signature instance viewed as an undirected
   graph: maximum number of distinct neighbours of an element. *)
let outdegree t =
  ESet.fold
    (fun e m ->
      let nbrs =
        List.fold_left
          (fun acc (f : Instance.fact) ->
            List.fold_left
              (fun acc e' ->
                if Element.equal e e' then acc else ESet.add e' acc)
              acc f.args)
          ESet.empty (Instance.incident e t)
      in
      max m (ESet.cardinal nbrs))
    (Instance.domain t) 0
