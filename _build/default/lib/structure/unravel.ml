module ESet = Element.Set
module EMap = Element.Map

type variant = UGF | UGC2

type t = {
  result : Instance.t;
  up : Element.t EMap.t;
  root_copies : (ESet.t * Element.t EMap.t) list;
}

let up_map t = t.up
let instance t = t.result

let root_copy t g =
  List.find_opt (fun (g', _) -> ESet.equal g g') t.root_copies
  |> Option.map snd

(* Copy of the induced subinstance D|G through [copies : orig -> copy]. *)
let bag_facts d g copies =
  List.filter_map
    (fun (f : Instance.fact) ->
      if List.for_all (fun a -> ESet.mem a g) f.args then
        Some { f with args = List.map (fun a -> EMap.find a copies) f.args }
      else None)
    (ESet.fold (fun e acc -> Instance.incident e d @ acc) g [])
  |> List.sort_uniq Instance.compare_fact

(* The uGF-unravelling (conditions (a),(b),(c)) or the uGC2-unravelling
   (condition (c) replaced by (c'): the overlap with the predecessor must
   differ from the overlap with the successor). Bounded to sequences of
   at most [depth] expansion steps. *)
let unravel ?(variant = UGF) ~depth d =
  let gs = Array.of_list (Guarded.maximal_guarded_sets d) in
  let n = Array.length gs in
  let node_counter = ref 0 in
  let fresh_copy orig =
    incr node_counter;
    Element.Const
      (Printf.sprintf "%s@%d" (Element.to_string orig) !node_counter)
  in
  let result = ref Instance.empty in
  let up = ref EMap.empty in
  let root_copies = ref [] in
  let add_bag g copies =
    EMap.iter (fun orig copy -> up := EMap.add copy orig !up) copies;
    List.iter
      (fun f -> result := Instance.add_fact f !result)
      (bag_facts d g copies)
  in
  (* Expand node (tail index i, bag [copies], predecessor index [prev]). *)
  let rec expand steps i copies prev =
    if steps < depth then
      for j = 0 to n - 1 do
        let gi = gs.(i) and gj = gs.(j) in
        let overlap = ESet.inter gi gj in
        let allowed =
          j <> i
          && (not (ESet.is_empty overlap))
          &&
          match (variant, prev) with
          | _, None -> true
          | UGF, Some p -> j <> p
          | UGC2, Some p -> not (ESet.equal (ESet.inter gi gs.(p)) overlap)
        in
        if allowed then begin
          let copies' =
            ESet.fold
              (fun dlt m ->
                if ESet.mem dlt overlap then EMap.add dlt (EMap.find dlt copies) m
                else EMap.add dlt (fresh_copy dlt) m)
              gj EMap.empty
          in
          add_bag gj copies';
          expand (steps + 1) j copies' (Some i)
        end
      done
  in
  for i = 0 to n - 1 do
    let copies =
      ESet.fold (fun dlt m -> EMap.add dlt (fresh_copy dlt) m) gs.(i) EMap.empty
    in
    add_bag gs.(i) copies;
    root_copies := (gs.(i), copies) :: !root_copies;
    expand 0 i copies None
  done;
  { result = !result; up = !up; root_copies = List.rev !root_copies }

(* The homomorphism e |-> e^ from the unravelling onto D. *)
let up_homomorphism t = t.up
