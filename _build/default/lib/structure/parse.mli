(** Text format for instances: one fact [R(a,b)] per line, optional
    trailing dot, ['#'] comments. *)

exception Parse_error of { line : int; message : string }

val instance_of_string : string -> Instance.t
