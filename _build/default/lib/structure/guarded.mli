(** Guarded sets, maximal guarded sets, bouquets (Sections 2.2 and 8). *)

(** [is_guarded t g] holds iff [g] is a singleton subset of the domain or
    is contained in the argument set of some fact of [t]. *)
val is_guarded : Instance.t -> Element.Set.t -> bool

val is_guarded_tuple : Instance.t -> Element.t list -> bool

(** Guarded sets arising as fact argument sets, plus all singletons. *)
val all_guarded_sets : Instance.t -> Element.Set.t list

(** Maximal guarded sets under inclusion; these are the bags used by
    unravellings and forest models. *)
val maximal_guarded_sets : Instance.t -> Element.Set.t list

(** [one_neighbourhood t a] is the subinterpretation induced by the union
    of all guarded sets containing [a] (written B{^ ≤1}{_a}). *)
val one_neighbourhood : Instance.t -> Element.t -> Instance.t

(** [is_bouquet t a] holds iff [t] equals the 1-neighbourhood of [a]. *)
val is_bouquet : Instance.t -> Element.t -> bool

(** No fact of the form R(b, b). *)
val is_irreflexive : Instance.t -> bool

(** Maximum number of distinct neighbours of an element. *)
val outdegree : Instance.t -> int
