module ESet = Element.Set

(* --------------------------------------------------------------------- *)
(* Hypergraph acyclicity via the GYO reduction, and join trees.           *)
(* Bags of connected guarded tree decompositions (Section 2.2) are the    *)
(* argument sets of facts; an instance is guarded-tree-decomposable iff   *)
(* its hypergraph of fact argument sets is alpha-acyclic.                 *)
(* --------------------------------------------------------------------- *)

type join_tree = {
  bags : ESet.t array;
  parents : int option array;  (** [parents.(i) = None] iff root *)
}

(* One GYO pass: remove vertices that occur in exactly one edge, then
   remove edges contained in other edges (recording the witness for the
   join tree). Returns when a fixpoint is reached. *)
let gyo edges =
  let n = Array.length edges in
  let current = Array.copy edges in
  let alive = Array.make n true in
  let absorbed_into = Array.make n None in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Count vertex occurrences among live edges. *)
    let count = Hashtbl.create 16 in
    Array.iteri
      (fun i e ->
        if alive.(i) then
          ESet.iter
            (fun v ->
              Hashtbl.replace count v
                (1 + Option.value (Hashtbl.find_opt count v) ~default:0))
            e)
      current;
    (* Ear-vertex removal. *)
    Array.iteri
      (fun i e ->
        if alive.(i) then begin
          let e' = ESet.filter (fun v -> Hashtbl.find count v > 1) e in
          if not (ESet.equal e e') then begin
            current.(i) <- e';
            changed := true
          end
        end)
      current;
    (* Edge absorption. *)
    Array.iteri
      (fun i e ->
        if alive.(i) then
          let j =
            let rec find k =
              if k >= n then None
              else if k <> i && alive.(k) && ESet.subset e current.(k) then
                Some k
              else find (k + 1)
            in
            find 0
          in
          match j with
          | Some j ->
              alive.(i) <- false;
              absorbed_into.(i) <- Some j;
              changed := true
          | None -> ())
      current
  done;
  (alive, current, absorbed_into)

let is_alpha_acyclic edges =
  match edges with
  | [] -> true
  | _ ->
      let arr = Array.of_list edges in
      let alive, current, _ = gyo arr in
      let live =
        Array.to_list
          (Array.mapi (fun i e -> if alive.(i) then Some e else None) current)
      in
      let live = List.filter_map Fun.id live in
      List.for_all ESet.is_empty live

(* Build a join tree when acyclic: follow absorption chains. After GYO on
   an acyclic hypergraph, exactly one edge remains alive per connected
   component (its vertex set emptied); absorption edges give the tree. *)
let join_tree edges =
  match edges with
  | [] -> Some { bags = [||]; parents = [||] }
  | _ ->
      let arr = Array.of_list edges in
      let alive, current, absorbed = gyo arr in
      let acyclic =
        Array.for_all2
          (fun a e -> (not a) || ESet.is_empty e)
          alive current
      in
      if not acyclic then None
      else
        let n = Array.length arr in
        let parents = Array.make n None in
        Array.iteri (fun i j -> parents.(i) <- j) absorbed;
        Some { bags = arr; parents }

(* The hyperedges of an instance: distinct fact argument sets. *)
let edges_of_instance inst =
  List.sort_uniq ESet.compare
    (List.map
       (fun (f : Instance.fact) -> ESet.of_list f.args)
       (Instance.facts inst))

let is_guarded_tree_decomposable inst = is_alpha_acyclic (edges_of_instance inst)

(* Connected guarded tree decomposability: additionally the Gaifman graph
   must be connected (so that adjacent bags can be made to overlap). *)
let is_cg_tree_decomposable inst =
  is_guarded_tree_decomposable inst
  && Gaifman.is_connected (Gaifman.of_instance inst)

(* Existence of a cg-tree decomposition whose root bag has domain exactly
   [root]: we require [root] to be a guarded set and the hypergraph
   extended with the edge [root] to remain acyclic. *)
let is_rooted_decomposable inst ~root =
  (not (ESet.is_empty root))
  && Guarded.is_guarded inst root
  && Gaifman.is_connected (Gaifman.of_instance inst)
  && is_alpha_acyclic (root :: edges_of_instance inst)
