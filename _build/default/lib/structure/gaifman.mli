(** The Gaifman graph of an instance and distance computations
    (Definition 6). *)

type t

val of_instance : Instance.t -> t
val neighbours : t -> Element.t -> Element.Set.t

(** Shortest-path distance, [None] if unreachable. *)
val distance : t -> Element.t -> Element.t -> int option

val connected_components : t -> Element.Set.t list
val is_connected : t -> bool

(** [set_distance g xs ys] is the minimum distance between a member of
    [xs] and a member of [ys]. *)
val set_distance : t -> Element.Set.t -> Element.Set.t -> int option
