(* Seeded random instance generation, used by tests, the invariance
   checker and the benchmark harness. *)

let elements n = List.init n (fun i -> Element.Const (Printf.sprintf "c%d" i))

let rec tuples dom k =
  if k = 0 then [ [] ]
  else
    List.concat_map (fun rest -> List.map (fun e -> e :: rest) dom) (tuples dom (k - 1))

(* A random instance over [signature] with [size] constants: each possible
   fact is included independently with probability [p]. *)
let instance ~rng ~signature ~size ~p =
  let dom = elements size in
  let base =
    List.fold_left (fun t e -> Instance.add_element e t) Instance.empty dom
  in
  List.fold_left
    (fun inst (rel, arity) ->
      List.fold_left
        (fun inst args ->
          if Random.State.float rng 1.0 < p then
            Instance.add_fact (Instance.fact rel args) inst
          else inst)
        inst (tuples dom arity))
    base
    (Logic.Signature.to_list signature)

(* A random connected-ish instance: as [instance] but guarantees at least
   one fact (instances are non-empty sets of facts). *)
let nonempty_instance ~rng ~signature ~size ~p =
  let rec go tries =
    let inst = instance ~rng ~signature ~size ~p in
    if Instance.cardinal inst > 0 || tries > 20 then inst
    else go (tries + 1)
  in
  let inst = go 0 in
  if Instance.cardinal inst > 0 then inst
  else
    (* Force one fact on the first relation. *)
    match Logic.Signature.to_list signature with
    | [] -> inst
    | (rel, arity) :: _ ->
        let dom = elements (max size 1) in
        let args = List.init arity (fun i -> List.nth dom (i mod List.length dom)) in
        Instance.add_fact (Instance.fact rel args) inst
