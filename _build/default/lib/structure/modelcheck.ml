module EMap = Element.Map
module SMap = Logic.Names.SMap

type env = Element.t SMap.t

exception Unbound_variable of string

let term env = function
  | Logic.Term.Const c -> Element.Const c
  | Logic.Term.Var v -> (
      match SMap.find_opt v env with
      | Some e -> e
      | None -> raise (Unbound_variable v))

(* Finite-model evaluation of an FO(=, counting) formula: quantifiers
   range over the full domain of the interpretation. Exponential in the
   quantifier block width; intended for small structures (tests and
   bounded experiments). *)
let rec eval inst env (f : Logic.Formula.t) =
  match f with
  | True -> true
  | False -> false
  | Atom (r, ts) ->
      Instance.mem (Instance.fact r (List.map (term env) ts)) inst
  | Eq (s, t) -> Element.equal (term env s) (term env t)
  | Not g -> not (eval inst env g)
  | And (a, b) -> eval inst env a && eval inst env b
  | Or (a, b) -> eval inst env a || eval inst env b
  | Implies (a, b) -> (not (eval inst env a)) || eval inst env b
  | Forall (vs, g) ->
      for_all_assignments inst env vs (fun env' -> eval inst env' g)
  | Exists (vs, g) ->
      not
        (for_all_assignments inst env vs (fun env' -> not (eval inst env' g)))
  | CountGeq (n, v, g) ->
      let count = ref 0 in
      (try
         Element.Set.iter
           (fun e ->
             if eval inst (SMap.add v e env) g then begin
               incr count;
               if !count >= n then raise Exit
             end)
           (Instance.domain inst)
       with Exit -> ());
      !count >= n

and for_all_assignments inst env vs k =
  match vs with
  | [] -> k env
  | v :: rest ->
      Element.Set.for_all
        (fun e -> for_all_assignments inst (SMap.add v e env) rest k)
        (Instance.domain inst)

let holds inst f =
  if not (Logic.Formula.is_sentence f) then
    invalid_arg "Modelcheck.holds: formula has free variables";
  eval inst SMap.empty f

let is_model inst fs = List.for_all (holds inst) fs

let env_of_list l = SMap.of_seq (List.to_seq l)
