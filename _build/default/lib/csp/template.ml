module ESet = Structure.Element.Set

(* CSP templates (Section 6): finite structures A with relations of
   arity at most two; CSP(A) asks for a homomorphism D → A. *)

type t = {
  name : string;
  instance : Structure.Instance.t;
}

exception Bad_template of string

let of_instance ~name instance =
  if Logic.Signature.max_arity (Structure.Instance.signature instance) > 2
  then raise (Bad_template "template relations must have arity <= 2");
  { name; instance }

let domain t = Structure.Instance.domain_list t.instance
let signature t = Structure.Instance.signature t.instance

(* K_n with the edge relation "E": the template of n-colourability. *)
let k_colouring n =
  let vertices = List.init n (fun i -> Structure.Element.Const (Printf.sprintf "col%d" i)) in
  let facts =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if Structure.Element.equal a b then None
            else Some (Structure.Instance.fact "E" [ a; b ]))
          vertices)
      vertices
  in
  { name = Printf.sprintf "K%d" n; instance = Structure.Instance.of_facts facts }

(* A template whose CSP is solvable in PTIME by arc consistency:
   directed reachability to a sink ("Horn-like"). *)
let implication_template =
  let t = Structure.Element.Const "t" and f = Structure.Element.Const "f" in
  let facts =
    [
      Structure.Instance.fact "Imp" [ f; f ];
      Structure.Instance.fact "Imp" [ f; t ];
      Structure.Instance.fact "Imp" [ t; t ];
      Structure.Instance.fact "T" [ t ];
      Structure.Instance.fact "F" [ f ];
    ]
  in
  { name = "implication"; instance = Structure.Instance.of_facts facts }

let pp ppf t =
  Fmt.pf ppf "template %s over %d elements" t.name
    (Structure.Instance.domain_size t.instance)
