(** The Theorem 8 encodings: for a template A (admitting precoloring) an
    ontology O such that evaluating the OMQ (O, q ← N(x)) is
    polynomially equivalent to coCSP(A). Three variants realise the
    color markers φ{^ ≠}{_a} / φ{^ =}{_a}:

    - [Eq]: uGF2(1,=), via ∃y (Ra(x,y) ∧ ¬ x=y);
    - [Func]: uGF2(1,f), via a function F with ∀x F(x,x);
    - [Alcfl]: ALCF` depth 2, via ∃{^ ≥2}y Ra(x,y). *)

type variant =
  | Eq
  | Func
  | Alcfl

(** Relation R{_a} carrying the marker for template element [a]. *)
val color_relation : Structure.Element.t -> string

(** The marker formula φ{^ ≠}{_a} with free variable [at]. *)
val phi_neq : ?at:string -> variant -> Structure.Element.t -> Logic.Formula.t

val phi_eq : variant -> Structure.Element.t -> Logic.Formula.t

(** The encoding ontology; apply {!Precolor.closure} to the template
    first if pinning is wanted. *)
val ontology : ?variant:variant -> Template.t -> Logic.Ontology.t

(** D ↦ D′: turn precoloring pins P{_a}(d) into marker edges. *)
val lift_instance : Template.t -> Structure.Instance.t -> Structure.Instance.t

(** q ← N(x) with N fresh: certain iff the lifted instance is
    inconsistent with the encoding, i.e. iff D does not map to A. *)
val goal_query : Query.Cq.t

(** D ↦ D•: the consistency-to-CSP direction. *)
val consistency_reduct :
  Template.t -> Structure.Instance.t -> Structure.Instance.t
