module F = Logic.Formula
module T = Logic.Term

(* The Theorem 8 encodings: for every template A (admitting
   precoloring), an ontology O such that evaluating the OMQ
   (O, q ← N(x)) is polynomially equivalent to coCSP(A). Three variants
   realise the marker formulas φ≠a / φ=a in uGF2(1,=), uGF2(1,f) and
   ALCF` depth 2 respectively. *)

type variant =
  | Eq  (** uGF2(1,=): φ≠a(x) = ∃y (Ra(x,y) ∧ ¬ x=y) *)
  | Func  (** uGF2(1,f): F a function with ∀x F(x,x); ¬F(x,y) for ≠ *)
  | Alcfl  (** ALCF` depth 2: φ≠a(x) = ∃≥2 y Ra(x,y) *)

let color_relation a = "R_" ^ Structure.Element.to_string a

let vx = T.Var "x"
let vy = T.Var "y"

(* φ≠a(at): "at is mapped to template element a"; the witness variable
   is the other of the two variables, keeping the two-variable shape. *)
let phi_neq ?(at = "x") variant a =
  let w = if at = "x" then "y" else "x" in
  let ra = F.atom (color_relation a) [ T.Var at; T.Var w ] in
  match variant with
  | Eq -> F.Exists ([ w ], F.And (ra, F.Not (F.Eq (T.Var at, T.Var w))))
  | Func -> F.Exists ([ w ], F.And (ra, F.Not (F.atom "F" [ T.Var at; T.Var w ])))
  | Alcfl -> F.CountGeq (2, w, ra)

(* φ=a(x): the companion marker that every element satisfies, hiding the
   disjunction from positive existential queries. *)
let phi_eq variant a =
  let ra = F.atom (color_relation a) [ vx; vy ] in
  match variant with
  | Eq -> F.Exists ([ "y" ], F.And (ra, F.Eq (vx, vy)))
  | Func -> F.Exists ([ "y" ], F.And (ra, F.atom "F" [ vx; vy ]))
  | Alcfl -> F.Exists ([ "y" ], ra)

let forall_eq_x body = F.Forall ([ "x" ], F.Implies (F.Eq (vx, vx), body))

let distinct_pairs l =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b -> if Structure.Element.compare a b < 0 then Some (a, b) else None)
        l)
    l

(* The ontology of Theorem 8 for [t]; [t] should admit precoloring
   (apply {!Precolor.closure} first). *)
let ontology ?(variant = Eq) (t : Template.t) =
  let dom = Template.domain t in
  let sig_ = Template.signature t in
  (* 1. every element carries exactly one color marker *)
  let unique =
    forall_eq_x
      (F.conj2
         (F.conj
            (List.map
               (fun (a, a') ->
                 F.neg (F.conj2 (phi_neq variant a) (phi_neq variant a')))
               (distinct_pairs dom)))
         (F.disj (List.map (phi_neq variant) dom)))
  in
  (* 2. unary constraints: A(x) forbids colors a with A(a) ∉ A *)
  let unary_constraints =
    List.concat_map
      (fun (rel, arity) ->
        if arity <> 1 then []
        else
          List.filter_map
            (fun a ->
              if Structure.Instance.mem (Structure.Instance.fact rel [ a ]) t.instance
              then None
              else
                Some
                  (forall_eq_x
                     (F.implies (F.atom rel [ vx ]) (F.neg (phi_neq variant a)))))
            dom)
      (Logic.Signature.to_list sig_)
  in
  (* 3. binary constraints: R(x,y) forbids color pairs outside R^A *)
  let binary_constraints =
    List.concat_map
      (fun (rel, arity) ->
        if arity <> 2 then []
        else
          List.concat_map
            (fun a ->
              List.filter_map
                (fun a' ->
                  if
                    Structure.Instance.mem
                      (Structure.Instance.fact rel [ a; a' ])
                      t.instance
                  then None
                  else
                    Some
                      (F.Forall
                         ( [ "x"; "y" ],
                           F.Implies
                             ( F.atom rel [ vx; vy ],
                               F.neg
                                 (F.conj2
                                    (phi_neq ~at:"x" variant a)
                                    (phi_neq ~at:"y" variant a')) ) )))
                dom)
            dom)
      (Logic.Signature.to_list sig_)
  in
  (* 4. ∀x φ=a(x): makes the markers invisible to CQs *)
  let masks = List.map (fun a -> forall_eq_x (phi_eq variant a)) dom in
  let extra =
    match variant with
    | Func -> [ forall_eq_x (F.atom "F" [ vx; vx ]) ]
    | Eq | Alcfl -> []
  in
  let functional = match variant with Func -> [ "F" ] | Eq | Alcfl -> [] in
  Logic.Ontology.make ~functional
    ((unique :: unary_constraints) @ binary_constraints @ masks @ extra)

(* ------------------------------------------------------------------ *)
(* Reductions                                                           *)
(* ------------------------------------------------------------------ *)

(* D ↦ D′: realise the precoloring pins P_a(d) as Ra(d, d2) edges to
   fresh constants (forcing φ≠a at d). *)
let lift_instance (t : Template.t) d =
  let counter = ref 0 in
  List.fold_left
    (fun inst (f : Structure.Instance.fact) ->
      match f.args with
      | [ x ] ->
          let pinned =
            List.find_opt
              (fun a -> f.rel = Precolor.predicate a)
              (Template.domain t)
          in
          (match pinned with
          | Some a ->
              incr counter;
              let fresh =
                Structure.Element.Const (Printf.sprintf "pin%d" !counter)
              in
              Structure.Instance.add_fact
                (Structure.Instance.fact (color_relation a) [ x; fresh ])
                inst
          | None -> inst)
      | _ -> inst)
    d (Structure.Instance.facts d)

(* The goal query q ← N(x) with N fresh. *)
let goal_query = Query.Cq.make ~name:"q" ~answer:[] [ ("N", [ T.Var "x" ]) ]

(* D ↦ D•: reduct to sig(A) plus precoloring facts recovered from
   non-loop Ra edges; D is consistent w.r.t. O iff D• → A. *)
let consistency_reduct (t : Template.t) d =
  let sig_ = Template.signature t in
  let keep (f : Structure.Instance.fact) = Logic.Signature.mem f.rel sig_ in
  let reduct =
    List.fold_left
      (fun inst f -> if keep f then Structure.Instance.add_fact f inst else inst)
      Structure.Instance.empty (Structure.Instance.facts d)
  in
  List.fold_left
    (fun inst (f : Structure.Instance.fact) ->
      match f.args with
      | [ x; y ] when not (Structure.Element.equal x y) ->
          let colored =
            List.find_opt
              (fun a -> f.rel = color_relation a)
              (Template.domain t)
          in
          (match colored with
          | Some a ->
              Structure.Instance.add_fact
                (Structure.Instance.fact (Precolor.predicate a) [ x ])
                inst
          | None -> inst)
      | _ -> inst)
    reduct (Structure.Instance.facts d)
