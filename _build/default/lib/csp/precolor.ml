(* Precoloring (Section 6): a template A admits precoloring if for each
   a ∈ dom(A) there is a unary relation P_a holding exactly at a. Every
   CSP is polynomially equivalent to one of this form. *)

let predicate e = "P_" ^ Structure.Element.to_string e

(* Extend a template with its precoloring predicates. *)
let closure (t : Template.t) =
  let with_preds =
    List.fold_left
      (fun inst a ->
        Structure.Instance.add_fact
          (Structure.Instance.fact (predicate a) [ a ])
          inst)
      t.instance
      (Template.domain t)
  in
  { Template.name = t.Template.name ^ "+pre"; instance = with_preds }

(* Pin element [x] of an input instance to template element [a]. *)
let pin x a d =
  Structure.Instance.add_fact (Structure.Instance.fact (predicate a) [ x ]) d
