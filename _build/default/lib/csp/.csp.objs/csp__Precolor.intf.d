lib/csp/precolor.mli: Structure Template
