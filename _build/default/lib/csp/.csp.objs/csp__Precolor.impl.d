lib/csp/precolor.ml: List Structure Template
