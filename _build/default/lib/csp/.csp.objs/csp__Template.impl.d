lib/csp/template.ml: Fmt List Logic Printf Structure
