lib/csp/solve.ml: List Option Queue Structure Template
