lib/csp/solve.mli: Structure Template
