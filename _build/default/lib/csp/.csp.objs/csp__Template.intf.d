lib/csp/template.mli: Fmt Logic Structure
