lib/csp/encode.mli: Logic Query Structure Template
