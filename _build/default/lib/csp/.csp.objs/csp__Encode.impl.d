lib/csp/encode.ml: List Logic Precolor Printf Query Structure Template
