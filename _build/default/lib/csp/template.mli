(** CSP templates (Section 6): finite structures with relations of arity
    at most two. CSP(A) asks whether an input instance maps
    homomorphically into A. *)

type t = {
  name : string;
  instance : Structure.Instance.t;
}

exception Bad_template of string

(** @raise Bad_template when a relation has arity > 2. *)
val of_instance : name:string -> Structure.Instance.t -> t

val domain : t -> Structure.Element.t list
val signature : t -> Logic.Signature.t

(** K{_n}: the n-colourability template (NP-hard for n ≥ 3, PTIME for
    n ≤ 2). *)
val k_colouring : int -> t

(** A PTIME template solved by arc consistency (implication graph). *)
val implication_template : t

val pp : t Fmt.t
