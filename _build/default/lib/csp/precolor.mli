(** Precoloring of templates (Section 6): unary predicates P{_a} holding
    exactly at [a], so inputs can pin elements to template values. *)

val predicate : Structure.Element.t -> string

(** Template extended with its precoloring predicates. *)
val closure : Template.t -> Template.t

(** Pin an input element to a template element. *)
val pin :
  Structure.Element.t ->
  Structure.Element.t ->
  Structure.Instance.t ->
  Structure.Instance.t
