module ESet = Structure.Element.Set
module EMap = Structure.Element.Map

(* A CSP solver for binary templates: unary-constraint seeding, AC-3
   propagation, then backtracking with minimum-remaining-values. *)

type domains = ESet.t EMap.t

(* Initial candidate sets: restrict by unary facts. *)
let seed_domains (t : Template.t) d =
  let tdom = ESet.of_list (Template.domain t) in
  Structure.Instance.domain d
  |> ESet.elements
  |> List.map (fun x ->
         let allowed =
           List.fold_left
             (fun acc (f : Structure.Instance.fact) ->
               match f.args with
               | [ _ ] ->
                   ESet.filter
                     (fun v ->
                       Structure.Instance.mem
                         (Structure.Instance.fact f.rel [ v ])
                         t.instance)
                     acc
               | _ -> acc)
             tdom
             (Structure.Instance.incident x d)
         in
         (x, allowed))
  |> List.to_seq |> EMap.of_seq

(* Binary constraints of the input instance: (x, y, R) for R(x,y) ∈ D
   with x ≠ y or x = y (loops give unary-like constraints). *)
let binary_constraints d =
  List.filter_map
    (fun (f : Structure.Instance.fact) ->
      match f.args with [ x; y ] -> Some (x, y, f.rel) | _ -> None)
    (Structure.Instance.facts d)

let supported (t : Template.t) rel u v =
  Structure.Instance.mem (Structure.Instance.fact rel [ u; v ]) t.instance

(* Revise dom(x) against constraint R(x,y): keep u iff some v in dom(y)
   with R(u,v) in the template. *)
let revise t doms x y rel ~forward =
  let dx = EMap.find x doms and dy = EMap.find y doms in
  let keep u =
    ESet.exists
      (fun v -> if forward then supported t rel u v else supported t rel v u)
      dy
  in
  let dx' = ESet.filter keep dx in
  if ESet.cardinal dx' = ESet.cardinal dx then None
  else Some (EMap.add x dx' doms)

let ac3 (t : Template.t) d doms =
  let constraints = binary_constraints d in
  (* worklist of (x, y, rel, forward) arcs *)
  let arcs =
    List.concat_map
      (fun (x, y, rel) -> [ (x, y, rel, true); (y, x, rel, false) ])
      constraints
  in
  let q = Queue.create () in
  List.iter (fun a -> Queue.add a q) arcs;
  let doms = ref doms in
  let ok = ref true in
  while !ok && not (Queue.is_empty q) do
    let x, y, rel, forward = Queue.pop q in
    match revise t !doms x y rel ~forward with
    | None -> ()
    | Some doms' ->
        doms := doms';
        if ESet.is_empty (EMap.find x doms') then ok := false
        else
          List.iter
            (fun (a, b, rel', fwd) ->
              if Structure.Element.equal b x then Queue.add (a, b, rel', fwd) q)
            arcs
  done;
  if !ok then Some !doms else None

(* Handle loops R(x,x): value of x must have a template loop. *)
let prune_loops (t : Template.t) d doms =
  List.fold_left
    (fun doms (x, y, rel) ->
      match doms with
      | None -> None
      | Some doms ->
          if Structure.Element.equal x y then begin
            let dx = ESet.filter (fun u -> supported t rel u u) (EMap.find x doms) in
            if ESet.is_empty dx then None else Some (EMap.add x dx doms)
          end
          else Some doms)
    (Some doms) (binary_constraints d)

let rec backtrack t d doms =
  (* choose unassigned variable (domain size > 1) with fewest values *)
  let pick =
    EMap.fold
      (fun x dx best ->
        let n = ESet.cardinal dx in
        if n <= 1 then best
        else
          match best with
          | Some (_, m) when m <= n -> best
          | _ -> Some (x, n))
      doms None
  in
  match pick with
  | None ->
      (* all singletons: verify all constraints *)
      let assignment = EMap.map ESet.choose doms in
      if
        List.for_all
          (fun (x, y, rel) ->
            supported t rel (EMap.find x assignment) (EMap.find y assignment))
          (binary_constraints d)
      then Some assignment
      else None
  | Some (x, _) ->
      ESet.fold
        (fun v acc ->
          match acc with
          | Some _ -> acc
          | None -> (
              let doms' = EMap.add x (ESet.singleton v) doms in
              match ac3 t d doms' with
              | None -> None
              | Some doms'' -> backtrack t d doms''))
        (EMap.find x doms) None

(* [solve t d]: a homomorphism D → A, or None. *)
let solve (t : Template.t) d =
  if ESet.is_empty (Structure.Instance.domain d) then Some EMap.empty
  else
    let doms = seed_domains t d in
    if EMap.exists (fun _ dx -> ESet.is_empty dx) doms then None
    else
      match prune_loops t d doms with
      | None -> None
      | Some doms -> (
          match ac3 t d doms with
          | None -> None
          | Some doms -> backtrack t d doms)

let solvable t d = Option.is_some (solve t d)

(* Reference implementation by generic homomorphism search (tests). *)
let solvable_by_hom (t : Template.t) d =
  Structure.Homomorphism.exists ~source:d ~target:t.instance ()
