(** CSP solving for binary templates: unary seeding, AC-3 propagation,
    backtracking with minimum remaining values. *)

type domains = Structure.Element.Set.t Structure.Element.Map.t

(** A homomorphism D → A as an assignment, or [None]. *)
val solve :
  Template.t ->
  Structure.Instance.t ->
  Structure.Element.t Structure.Element.Map.t option

val solvable : Template.t -> Structure.Instance.t -> bool

(** Reference: generic backtracking homomorphism search (for tests). *)
val solvable_by_hom : Template.t -> Structure.Instance.t -> bool
