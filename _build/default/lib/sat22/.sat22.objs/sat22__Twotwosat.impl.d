lib/sat22/twotwosat.ml: Fmt List Logic Option Printf Random
