lib/sat22/twotwosat.mli: Fmt Logic Random
