lib/sat22/reduction.ml: Fun List Logic Printf Query Reasoner Structure Twotwosat
