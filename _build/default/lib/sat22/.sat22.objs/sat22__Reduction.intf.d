lib/sat22/reduction.mli: Logic Query Structure Twotwosat
