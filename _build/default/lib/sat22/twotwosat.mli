(** 2+2-SAT (Schaerf): clauses with two positive and two negative
    literals over variables and truth constants. NP-complete; the source
    problem of the Theorem 3 coNP-hardness reduction. *)

type literal =
  | Var of string
  | Truth of bool

type clause = {
  p1 : literal;
  p2 : literal;
  n1 : literal;
  n2 : literal;
}

type t = clause list

val clause : literal -> literal -> literal -> literal -> clause
val variables : t -> Logic.Names.SSet.t
val eval : bool Logic.Names.SMap.t -> t -> bool

(** Backtracking solver (exact). *)
val solve : t -> bool Logic.Names.SMap.t option

val satisfiable : t -> bool
val pp_clause : clause Fmt.t
val pp : t Fmt.t

(** Seeded random formulas for scaling experiments. *)
val random : rng:Random.State.t -> nvars:int -> nclauses:int -> t
