module SMap = Logic.Names.SMap

(* The Theorem 3 reduction: if O is not materializable — witnessed by an
   instance D0 and two pointed unary CQs q1@a1, q2@a2 whose disjunction
   is certain while neither disjunct is — then 2+2-UNSAT reduces to
   query evaluation w.r.t. O. One fresh copy of D0 per propositional
   variable encodes its truth value ("true" = q1 holds); the query, a
   UCQ with one disjunct per clause, detects a falsified clause. Since O
   is invariant under disjoint unions, gadget copies do not interact.

   Compared to the paper we use a UCQ with constants rather than one
   rAQ wired through fresh relations; by Theorem 4 the complexity of
   rAQ-, CQ- and UCQ-evaluation w.r.t. such O coincide. *)

type witness = {
  base : Structure.Instance.t;
  q1 : Query.Cq.t;  (** unary *)
  a1 : Structure.Element.t;
  q2 : Query.Cq.t;  (** unary *)
  a2 : Structure.Element.t;
}

exception Bad_witness of string

let check_witness w =
  if Query.Cq.arity w.q1 <> 1 || Query.Cq.arity w.q2 <> 1 then
    raise (Bad_witness "witness queries must be unary")

(* Rename a copy of the base gadget for variable [p]. *)
let copy_prefix p = p ^ "$"

let rename_element p = function
  | Structure.Element.Const c -> Structure.Element.Const (copy_prefix p ^ c)
  | Structure.Element.Null _ as e -> e

let gadget w p = Structure.Instance.map_elements (rename_element p) w.base

(* The instance D_φ: one gadget per variable of φ. *)
let instance w (f : Twotwosat.t) =
  check_witness w;
  Logic.Names.SSet.fold
    (fun p acc -> Structure.Instance.union acc (gadget w p))
    (Twotwosat.variables f)
    Structure.Instance.empty

(* Inline a unary pointed query at a concrete element: existential
   variables renamed apart by [tag], the answer variable replaced by the
   element's constant name. *)
let inline_at tag (q : Query.Cq.t) (target : Structure.Element.t) =
  let answer = match q.Query.Cq.answer with [ x ] -> x | _ -> assert false in
  let target_const =
    match target with
    | Structure.Element.Const c -> Logic.Term.Const c
    | Structure.Element.Null _ ->
        raise (Bad_witness "witness tuple must consist of constants")
  in
  List.map
    (fun (r, ts) ->
      ( r,
        List.map
          (function
            | Logic.Term.Var x when x = answer -> target_const
            | Logic.Term.Var x -> Logic.Term.Var (tag ^ x)
            | Logic.Term.Const _ as t -> t)
          ts ))
    q.Query.Cq.atoms

(* The disjunct detecting that clause [cl] is falsified: the truth value
   of p is "q1 holds (at the copy of a1) in D_p", and in every model of
   a gadget at least one of q1, q2 holds; so "p false" is witnessed by
   q2 and "n true" by q1. Constant literals simplify: a constantly-true
   literal makes the clause unfalsifiable (no disjunct); a
   constantly-false literal drops out of the conjunction. *)
let clause_disjunct w idx (cl : Twotwosat.clause) =
  let parts = ref [] in
  let falsifiable = ref true in
  (* positive literal: falsified when q2 holds at a2's copy *)
  let positive tag = function
    | Twotwosat.Truth true -> falsifiable := false
    | Twotwosat.Truth false -> ()
    | Twotwosat.Var p ->
        parts := !parts @ inline_at tag w.q2 (rename_element p w.a2)
  in
  (* negative literal ¬n: falsified when q1 holds at a1's copy *)
  let negative tag = function
    | Twotwosat.Truth false -> falsifiable := false
    | Twotwosat.Truth true -> ()
    | Twotwosat.Var p ->
        parts := !parts @ inline_at tag w.q1 (rename_element p w.a1)
  in
  positive (Printf.sprintf "c%dp1_" idx) cl.Twotwosat.p1;
  positive (Printf.sprintf "c%dp2_" idx) cl.Twotwosat.p2;
  negative (Printf.sprintf "c%dn1_" idx) cl.Twotwosat.n1;
  negative (Printf.sprintf "c%dn2_" idx) cl.Twotwosat.n2;
  if !falsifiable then
    Some (Query.Cq.make ~name:(Printf.sprintf "cl%d" idx) ~answer:[] !parts)
  else None

let query w (f : Twotwosat.t) =
  check_witness w;
  let disjuncts = List.filteri (fun _ _ -> true) f in
  let qs =
    List.mapi (fun i cl -> clause_disjunct w i cl) disjuncts
    |> List.filter_map Fun.id
  in
  match qs with
  | [] -> None (* no falsifiable clause: φ is trivially satisfiable *)
  | _ -> Some (Query.Ucq.make ~name:"q_phi" qs)

(* End-to-end: φ is unsatisfiable iff O, D_φ ⊨ q_φ. *)
let unsat_iff_certain ?(max_extra = 1) o w f =
  match query w f with
  | None -> (not (Twotwosat.satisfiable f), false)
  | Some q ->
      let d = instance w f in
      let certain = Reasoner.Bounded.certain_ucq ~max_extra o d q [] in
      (not (Twotwosat.satisfiable f), certain)
