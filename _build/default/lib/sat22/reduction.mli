(** The Theorem 3 reduction from 2+2-SAT: given a non-materializability
    witness for an invariant-under-disjoint-unions ontology O — an
    instance D{_0} and unary pointed CQs q1@a1, q2@a2 whose disjunction
    is certain while neither disjunct is — build, from a 2+2 formula φ,
    an instance D{_φ} (one gadget copy of D{_0} per variable) and a
    query q{_φ} such that φ is unsatisfiable iff O, D{_φ} ⊨ q{_φ}.

    We realise q{_φ} as a UCQ with constants (one disjunct per clause)
    rather than one rAQ wired through fresh relations; Theorem 4 equates
    the complexities of rAQ-, CQ- and UCQ-evaluation for such O. *)

type witness = {
  base : Structure.Instance.t;
  q1 : Query.Cq.t;
  a1 : Structure.Element.t;
  q2 : Query.Cq.t;
  a2 : Structure.Element.t;
}

exception Bad_witness of string

(** The gadget copy of the base instance for variable [p]. *)
val gadget : witness -> string -> Structure.Instance.t

(** D{_φ}: the disjoint union of the variable gadgets. *)
val instance : witness -> Twotwosat.t -> Structure.Instance.t

(** q{_φ}; [None] when no clause is falsifiable (φ trivially
    satisfiable). *)
val query : witness -> Twotwosat.t -> Query.Ucq.t option

(** [(unsat, certain)] — the two sides of the reduction equivalence,
    computed independently (solver vs bounded certain answers). *)
val unsat_iff_certain :
  ?max_extra:int ->
  Logic.Ontology.t ->
  witness ->
  Twotwosat.t ->
  bool * bool
