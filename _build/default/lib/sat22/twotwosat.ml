(* 2+2-SAT (Schaerf 1993): clauses with exactly two positive and two
   negative literals over propositional variables and the truth
   constants. NP-complete; the source problem of the coNP-hardness
   reduction of Theorem 3. *)

type literal =
  | Var of string
  | Truth of bool  (** the constants true / false *)

type clause = {
  p1 : literal;
  p2 : literal;  (** positive literals *)
  n1 : literal;
  n2 : literal;  (** negated literals *)
}

type t = clause list

let clause p1 p2 n1 n2 = { p1; p2; n1; n2 }

let variables f =
  List.fold_left
    (fun acc cl ->
      List.fold_left
        (fun acc l ->
          match l with Var x -> Logic.Names.SSet.add x acc | Truth _ -> acc)
        acc
        [ cl.p1; cl.p2; cl.n1; cl.n2 ])
    Logic.Names.SSet.empty f

let eval_literal assign = function
  | Truth b -> b
  | Var x -> Logic.Names.SMap.find x assign

let eval_clause assign cl =
  eval_literal assign cl.p1
  || eval_literal assign cl.p2
  || (not (eval_literal assign cl.n1))
  || not (eval_literal assign cl.n2)

let eval assign f = List.for_all (eval_clause assign) f

(* Backtracking with clause checking; exact and sufficient for the
   experiment sizes. *)
let solve f =
  let vars = Logic.Names.SSet.elements (variables f) in
  let rec go assign = function
    | [] -> if eval assign f then Some assign else None
    | x :: rest -> (
        match go (Logic.Names.SMap.add x true assign) rest with
        | Some a -> Some a
        | None -> go (Logic.Names.SMap.add x false assign) rest)
  in
  go Logic.Names.SMap.empty vars

let satisfiable f = Option.is_some (solve f)

let pp_literal ppf = function
  | Var x -> Fmt.string ppf x
  | Truth b -> Fmt.bool ppf b

let pp_clause ppf cl =
  Fmt.pf ppf "(%a | %a | ~%a | ~%a)" pp_literal cl.p1 pp_literal cl.p2
    pp_literal cl.n1 pp_literal cl.n2

let pp = Fmt.(list ~sep:(any " & ") pp_clause)

(* Random instances for scaling experiments. *)
let random ~rng ~nvars ~nclauses =
  let var () = Var (Printf.sprintf "p%d" (Random.State.int rng nvars)) in
  List.init nclauses (fun _ -> clause (var ()) (var ()) (var ()) (var ()))
