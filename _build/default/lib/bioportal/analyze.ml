(* The Section 1 analysis: strip constructors outside ALCHIF, compute
   depths, and count membership in the dichotomy fragments of Figure 1.
   This mirrors what the paper did to the 411 BioPortal ontologies. *)

module C = Dl.Concept

(* Remove constructors outside ALCHIF: qualified number restrictions
   (≥ n R C) / (≤ n R C) with n > 1 or a non-⊤ filler are approximated
   by their ALCHIF consequences (∃R.C for ≥, ⊤ for ≤), matching the
   paper's "after removing all constructors that do not fall within
   ALCHIF". *)
let rec to_alchif = function
  | (C.Top | C.Bot | C.Atomic _) as c -> c
  | C.Not c -> C.Not (to_alchif c)
  | C.And (a, b) -> C.And (to_alchif a, to_alchif b)
  | C.Or (a, b) -> C.Or (to_alchif a, to_alchif b)
  | C.Exists (r, c) -> C.Exists (r, to_alchif c)
  | C.Forall (r, c) -> C.Forall (r, to_alchif c)
  | C.AtMost (1, r, C.Top) -> C.leq_one r
  | C.AtLeast (n, r, c) ->
      if n <= 1 then C.Exists (r, to_alchif c) else C.Exists (r, to_alchif c)
  | C.AtMost (_, _, _) -> C.Top

let tbox_to_alchif t =
  List.map
    (function
      | Dl.Tbox.Sub (c, d) -> Dl.Tbox.Sub (to_alchif c, to_alchif d)
      | ax -> ax)
    t

type report = {
  name : string;
  depth : int;
  alchiq_depth1 : bool;  (** in ALCHIQ with depth ≤ 1 *)
  alchif_depth2 : bool;  (** in ALCHIF with depth ≤ 2 after stripping *)
  status : Classify.Landscape.status;  (** Figure 1 classification *)
}

let analyze t =
  let stripped = tbox_to_alchif t in
  let ev = Classify.Landscape.of_tbox t in
  {
    name = Dl.Tbox.name t;
    depth = Dl.Tbox.depth t;
    alchiq_depth1 = Dl.Tbox.within_alchiq t && Dl.Tbox.depth t <= 1;
    alchif_depth2 =
      Dl.Tbox.within_alchif stripped && Dl.Tbox.depth stripped <= 2;
    status = ev.Classify.Landscape.status;
  }

type table = {
  total : int;
  in_alchif_depth2 : int;
  in_alchiq_depth1 : int;
  with_dichotomy : int;
  deeper : int;
}

let tabulate reports =
  let count p = List.length (List.filter p reports) in
  {
    total = List.length reports;
    in_alchif_depth2 = count (fun r -> r.alchif_depth2);
    in_alchiq_depth1 = count (fun r -> r.alchiq_depth1);
    with_dichotomy =
      count (fun r -> r.status = Classify.Landscape.Dichotomy);
    deeper = count (fun r -> not r.alchif_depth2);
  }

let pp_table ppf t =
  Fmt.pf ppf
    "@[<v>corpus size:                 %d@ in ALCHIF with depth <= 2:   %d@ \
     in ALCHIQ with depth <= 1:   %d@ classified with a dichotomy: %d@ \
     outside (deeper):            %d@]"
    t.total t.in_alchif_depth2 t.in_alchiq_depth1 t.with_dichotomy t.deeper

(* The paper's reported numbers for the 411-ontology corpus. *)
let paper_reference = (411, 405, 385)
