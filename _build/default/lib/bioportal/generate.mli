(** A seeded synthetic stand-in for the BioPortal repository
    (Section 1): the constructor/depth distribution is calibrated to the
    proportions the paper reports (385/411 depth 1 in ALCHIQ, 405/411
    depth ≤ 2 in ALCHIF). See DESIGN.md for the substitution rationale. *)

(** One synthetic ontology. *)
val ontology : Random.State.t -> Dl.Tbox.t

(** The corpus (default: 411 ontologies, seed 2017). *)
val corpus : ?seed:int -> ?n:int -> unit -> Dl.Tbox.t list
