(** The Section 1 BioPortal analysis: strip non-ALCHIF constructors,
    compute depth, and count fragment membership. *)

(** Remove constructors outside ALCHIF (the paper's preprocessing). *)
val to_alchif : Dl.Concept.t -> Dl.Concept.t

val tbox_to_alchif : Dl.Tbox.t -> Dl.Tbox.t

type report = {
  name : string;
  depth : int;
  alchiq_depth1 : bool;
  alchif_depth2 : bool;
  status : Classify.Landscape.status;
}

val analyze : Dl.Tbox.t -> report

type table = {
  total : int;
  in_alchif_depth2 : int;
  in_alchiq_depth1 : int;
  with_dichotomy : int;
  deeper : int;
}

val tabulate : report list -> table
val pp_table : table Fmt.t

(** (total, in ALCHIF depth ≤ 2, in ALCHIQ depth 1) as reported by the
    paper. *)
val paper_reference : int * int * int
