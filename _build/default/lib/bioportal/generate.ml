module C = Dl.Concept

(* A synthetic stand-in for the BioPortal repository (Section 1): the
   real corpus is 411 OWL ontologies we cannot ship, so we generate a
   seeded corpus whose constructor and depth distribution is calibrated
   to the proportions the paper reports — most ontologies are shallow
   (depth 1, a few of depth 2, a handful deeper), role hierarchies are
   common, number restrictions and global functionality are rarer. The
   analyzer (the scientific content of the experiment) is identical to
   what the paper's analysis needs. *)

type profile = {
  n_concepts : int;
  n_roles : int;
  n_axioms : int;
  max_depth : int;
  p_inverse : float;
  p_exists : float;  (** vs forall at restrictions *)
  p_qualified : float;  (** number restrictions (Q) *)
  p_local_func : float;  (** (≤ 1 R) *)
  p_role_axiom : float;
  p_global_func : float;
}

(* Draw the depth class with the paper's marginals: of 411 ontologies,
   385 have depth 1 (in ALCHIQ), 405 have depth ≤ 2 (in ALCHIF), the
   rest are deeper. *)
let draw_profile rng =
  let r = Random.State.float rng 1.0 in
  let max_depth = if r < 385.0 /. 411.0 then 1 else if r < 405.0 /. 411.0 then 2 else 3 in
  {
    n_concepts = 4 + Random.State.int rng 12;
    n_roles = 2 + Random.State.int rng 4;
    n_axioms = 5 + Random.State.int rng 25;
    max_depth;
    p_inverse = 0.2;
    p_exists = 0.7;
    p_qualified = (if max_depth = 1 then 0.25 else 0.0);
    p_local_func = 0.15;
    p_role_axiom = 0.3;
    p_global_func = 0.05;
  }

let concept_name i = Printf.sprintf "C%d" i
let role_name i = Printf.sprintf "r%d" i

let random_role rng profile =
  let r = role_name (Random.State.int rng profile.n_roles) in
  if Random.State.float rng 1.0 < profile.p_inverse then C.Inv r else C.Name r

(* A random concept of depth at most [depth]. *)
let rec random_concept rng profile depth =
  let atomic () = C.Atomic (concept_name (Random.State.int rng profile.n_concepts)) in
  if depth = 0 then
    match Random.State.int rng 5 with
    | 0 -> C.Not (atomic ())
    | 1 -> C.And (atomic (), atomic ())
    | 2 -> C.Or (atomic (), atomic ())
    | _ -> atomic ()
  else
    let filler () = random_concept rng profile (depth - 1) in
    let role = random_role rng profile in
    let r = Random.State.float rng 1.0 in
    if r < profile.p_local_func then C.leq_one role
    else if r < profile.p_local_func +. profile.p_qualified then
      let n = 1 + Random.State.int rng 3 in
      if Random.State.bool rng then C.AtLeast (n, role, filler ())
      else C.AtMost (n, role, filler ())
    else if Random.State.float rng 1.0 < profile.p_exists then
      C.Exists (role, filler ())
    else C.Forall (role, filler ())

let random_axiom rng profile =
  if Random.State.float rng 1.0 < profile.p_role_axiom then
    if Random.State.float rng 1.0 < profile.p_global_func then
      Dl.Tbox.Func (random_role rng profile)
    else Dl.Tbox.RoleSub (random_role rng profile, random_role rng profile)
  else
    let lhs =
      (* left sides are mostly atomic, as in real ontologies *)
      if Random.State.float rng 1.0 < 0.8 then
        C.Atomic (concept_name (Random.State.int rng profile.n_concepts))
      else random_concept rng profile (min 1 profile.max_depth)
    in
    Dl.Tbox.Sub (lhs, random_concept rng profile profile.max_depth)

(* One synthetic ontology. *)
let ontology rng =
  let profile = draw_profile rng in
  (* ensure the drawn depth is realised by at least one axiom *)
  let forced =
    Dl.Tbox.Sub
      ( C.Atomic (concept_name 0),
        random_concept rng profile profile.max_depth )
  in
  let rec force_depth ax tries =
    if Dl.Concept.depth (match ax with Dl.Tbox.Sub (_, d) -> d | _ -> C.Top)
       = profile.max_depth
       || tries > 20
    then ax
    else
      force_depth
        (Dl.Tbox.Sub
           (C.Atomic (concept_name 0), random_concept rng profile profile.max_depth))
        (tries + 1)
  in
  force_depth forced 0
  :: List.init (profile.n_axioms - 1) (fun _ -> random_axiom rng profile)

(* The corpus: [n] seeded ontologies. *)
let corpus ?(seed = 2017) ?(n = 411) () =
  let rng = Random.State.make [| seed |] in
  List.init n (fun _ -> ontology rng)
