lib/bioportal/analyze.ml: Classify Dl Fmt List
