lib/bioportal/analyze.mli: Classify Dl Fmt
