lib/bioportal/generate.mli: Dl Random
