lib/bioportal/generate.ml: Dl List Printf Random
