lib/rewriting/typeprog.ml: Array Buffer Fun Hashtbl List Logic Option Printf Query Reasoner String Structure
