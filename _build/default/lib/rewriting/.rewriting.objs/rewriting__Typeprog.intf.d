lib/rewriting/typeprog.mli: Logic Query Structure
