lib/datalog/seminaive.ml: List Logic Program Query Structure
