lib/datalog/program.mli: Fmt Logic
