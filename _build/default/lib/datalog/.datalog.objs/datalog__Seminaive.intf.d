lib/datalog/seminaive.mli: Program Structure
