lib/datalog/program.ml: Fmt List Logic Printf String
