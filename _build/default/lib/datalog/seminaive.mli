(** Bottom-up Datalog≠ evaluation. [evaluate] is semi-naive: after the
    first round, rules only fire through matches touching the previous
    round's delta. [evaluate_naive] is the reference implementation used
    in tests. *)

(** All derivable facts (EDB ∪ IDB fixpoint). *)
val evaluate : Program.t -> Structure.Instance.t -> Structure.Instance.t

(** Tuples of the goal relation, sorted. *)
val answers :
  Program.t -> Structure.Instance.t -> Structure.Element.t list list

(** D ⊨ Π(ā). *)
val holds :
  Program.t -> Structure.Instance.t -> Structure.Element.t list -> bool

val evaluate_naive : Program.t -> Structure.Instance.t -> Structure.Instance.t
