(** Datalog and Datalog≠ programs (Appendix B): rules with positive body
    atoms and optional inequalities, and a selected goal relation. *)

type atom = string * Logic.Term.t list

type literal =
  | Pos of atom
  | Neq of Logic.Term.t * Logic.Term.t

type rule = {
  head : atom;
  body : literal list;
}

type t = {
  rules : rule list;
  goal : string;
}

exception Unsafe_rule of string

(** Smart constructor checking range restriction.
    @raise Unsafe_rule otherwise. *)
val rule : head:atom -> body:literal list -> rule

(** @raise Unsafe_rule when a rule is not range-restricted. *)
val make : ?goal:string -> rule list -> t

val atom_vars : atom -> Logic.Names.SSet.t
val positive_atoms : literal list -> atom list
val intensional : t -> Logic.Names.SSet.t
val uses_inequality : t -> bool
val arity_of_goal : t -> int option
val pp_rule : rule Fmt.t
val pp : t Fmt.t
val size : t -> int
