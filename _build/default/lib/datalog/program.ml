module SSet = Logic.Names.SSet

type atom = string * Logic.Term.t list

type literal =
  | Pos of atom  (** relational body atom *)
  | Neq of Logic.Term.t * Logic.Term.t  (** inequality (Datalog≠) *)

type rule = {
  head : atom;
  body : literal list;
}

type t = {
  rules : rule list;
  goal : string;  (** the selected goal relation *)
}

exception Unsafe_rule of string

let atom_vars (_, ts) = Logic.Term.vars ts

let positive_atoms body =
  List.filter_map (function Pos a -> Some a | Neq _ -> None) body

let term_vars = function Logic.Term.Var v -> [ v ] | Logic.Term.Const _ -> []

(* Range restriction: every head variable and every variable in an
   inequality must occur in a positive body atom. *)
let check_rule r =
  let pos_vars =
    List.fold_left
      (fun acc a -> SSet.union acc (atom_vars a))
      SSet.empty (positive_atoms r.body)
  in
  let needed =
    SSet.union (atom_vars r.head)
      (List.fold_left
         (fun acc -> function
           | Pos _ -> acc
           | Neq (s, t) -> SSet.union acc (SSet.of_list (term_vars s @ term_vars t)))
         SSet.empty r.body)
  in
  if not (SSet.subset needed pos_vars) then
    raise
      (Unsafe_rule
         (Printf.sprintf "rule for %s: variables {%s} not range-restricted"
            (fst r.head)
            (String.concat ","
               (SSet.elements (SSet.diff needed pos_vars)))))

let rule ~head ~body =
  let r = { head; body } in
  check_rule r;
  r

let make ?(goal = "goal") rules =
  List.iter check_rule rules;
  { rules; goal }

(* Intensional relations: those occurring in a rule head. *)
let intensional t =
  List.fold_left (fun s r -> SSet.add (fst r.head) s) SSet.empty t.rules

let uses_inequality t =
  List.exists
    (fun r -> List.exists (function Neq _ -> true | Pos _ -> false) r.body)
    t.rules

let arity_of_goal t =
  List.find_map
    (fun r -> if fst r.head = t.goal then Some (List.length (snd r.head)) else None)
    t.rules

let pp_literal ppf = function
  | Pos (r, ts) ->
      Fmt.pf ppf "%s(%a)" r Fmt.(list ~sep:comma Logic.Term.pp) ts
  | Neq (s, u) -> Fmt.pf ppf "%a != %a" Logic.Term.pp s Logic.Term.pp u

let pp_rule ppf r =
  Fmt.pf ppf "%s(%a) <- %a" (fst r.head)
    Fmt.(list ~sep:comma Logic.Term.pp)
    (snd r.head)
    Fmt.(list ~sep:comma pp_literal)
    r.body

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_rule) t.rules
let size t = List.length t.rules
