(** The Theorem 10 construction: ALCIF` depth-2 ontologies that verify
    grid cells (O{_cell}) and properly tiled grids (O{_P}) by
    propagating (= 1 R) markers, plus the combinatorial conditions
    cell(d) / grid(d) that they characterise. *)

type letter = LX | LY | LXi | LYi

type word = letter list

val word_name : word -> string

(** The auxiliary relation R{^ W}{_i}. *)
val marker_rel : int -> word -> string

(** (= 1 R): "exactly one R-successor". *)
val eq_one : string -> Dl.Concept.t

(** The marker concept (= 1 R{^ W}{_i}). *)
val marker : int -> word -> Dl.Concept.t

(** The cell-marking ontology (Appendix H). *)
val ontology_cell : Dl.Tbox.t

(** D ⊨ cell(d): the X/Y square at [d] closes. *)
val cell_holds : Structure.Instance.t -> Structure.Element.t -> bool

(** O{_P} for a tiling problem (Figure 4). *)
val ontology_p : Tiling.t -> Dl.Tbox.t

(** O{_P} ∪ {(=1 Acc) ⊑ B1 ⊔ B2}: non-materializable iff P admits a
    tiling (Theorem 10). *)
val ontology_undecidability : Tiling.t -> Dl.Tbox.t

(** D ⊨ grid(d): [d] roots a closed, properly tiled grid in D. *)
val grid_holds : Tiling.t -> Structure.Instance.t -> Structure.Element.t -> bool

(** The (≥ 2 S) marker for run cells (Lemma 4): presettable positively
    but not negatively, matching the run fitting problem. *)
val geq2 : string -> Dl.Concept.t

(** The Lemma 4 ontology O{_M}: O{_P} plus a grid-borne simulation of
    the machine's runs; reaching the accepting state triggers the
    B1 ⊔ B2 disjunction. *)
val ontology_m : Machine.t -> Dl.Tbox.t
