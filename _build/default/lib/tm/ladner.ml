(* Scaffolding for the run-fitting variant of Ladner's theorem
   (Theorem 12). The construction pads SAT instances to length n^H(n)
   and diagonalises against an enumeration of polynomial-time machines:

     H(n) = min { i < log log n |  M_i agrees with RF(M_H) on all
                                   strings of length <= log n }
            (or log log n when no such i exists).

   At laptop scale we cannot run the true diagonalisation, but its
   skeleton is executable: deciders are supplied as OCaml functions and
   the reference language as an oracle, and H is computed literally by
   the definition. Theorem 12's properties (H constant iff the oracle
   language is decided by some enumerated machine on all tested lengths;
   H unbounded otherwise) are exercised in the tests. *)

type enumeration = int -> string -> bool
(** [enumeration i] is the decider M{_i}. *)

let ilog2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

(* All strings over [alphabet] of length <= l. *)
let strings_up_to alphabet l =
  let rec go l =
    if l = 0 then [ "" ]
    else
      let shorter = go (l - 1) in
      shorter
      @ List.concat_map
          (fun s ->
            if String.length s = l - 1 then
              List.map (fun c -> s ^ String.make 1 c) alphabet
            else [])
          shorter
  in
  go l

(* H(n) per the definition, with [oracle] playing RF(M_H). *)
let h_function ~(enumeration : enumeration) ~(oracle : string -> bool)
    ?(alphabet = [ '0'; '1' ]) n =
  let bound = ilog2 (max 1 (ilog2 (max 1 n))) in
  let log_n = ilog2 (max 1 n) in
  let test_strings = strings_up_to alphabet log_n in
  let agrees i =
    List.for_all (fun z -> Bool.equal (enumeration i z) (oracle z)) test_strings
  in
  let rec search i = if i >= bound then bound else if agrees i then i else search (i + 1) in
  search 0

(* The padded inputs 1^(n^h) on which MH simulates SAT (initialization
   phase of the Theorem 12 machine). *)
let padded_input_length ~h n =
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  pow n (max h 1)

(* Is H eventually constant for this enumeration/oracle pair (sampled up
   to [up_to])? Lemma 14: H is O(1) iff some enumerated machine decides
   the oracle language. *)
let eventually_constant ~enumeration ~oracle ?alphabet ~up_to () =
  let values =
    List.init up_to (fun n -> h_function ~enumeration ~oracle ?alphabet (n + 2))
  in
  match List.rev values with
  | last :: _ -> List.for_all (fun v -> v = last) (List.filteri (fun i _ -> i >= up_to / 2) values)
  | [] -> true
