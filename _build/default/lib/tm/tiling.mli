(** The finite rectangle tiling problem (Section 7): tile types with
    horizontal/vertical matching, an initial tile for the lower-left
    corner and a final tile for the upper-right corner; solved here by
    bounded search. *)

type t = {
  tiles : string list;
  h : (string * string) list;
  v : (string * string) list;
  init : string;
  final : string;
}

exception Bad_problem of string

val make :
  tiles:string list ->
  h:(string * string) list ->
  v:(string * string) list ->
  init:string ->
  final:string ->
  t

type tiling = string array array

(** Does the matrix tile the problem (corners, uniqueness of the corner
    tiles, matching relations)? *)
val valid : t -> tiling -> bool

(** A tiling of the fixed (n+1) × (m+1) rectangle, if any. *)
val solve_fixed : t -> int -> int -> tiling option

(** Search all rectangle sizes up to the bounds. *)
val solve : ?max_n:int -> ?max_m:int -> t -> tiling option

val admits_tiling : ?max_n:int -> ?max_m:int -> t -> bool

(** The X/Y grid instance with tile labels encoding a tiled rectangle
    (the input encoding of Theorem 10). *)
val grid_instance : tiling -> Structure.Instance.t

(** A solvable toy problem and an unsolvable one. *)
val trivial : t

val unsolvable : t
