(** The run fitting problem (Definition 8): can a partial run — a
    sequence of partial configurations with wildcards — be matched by an
    accepting run? NP in general; decided here by backtracking. *)

type cell =
  | Sym of string
  | State of string
  | Wild

type partial_config = cell array

type partial_run = partial_config list

exception Bad_partial_run of string

(** Parse rows of whitespace-separated cells; "?" is the wildcard.
    @raise Bad_partial_run on malformed rows. *)
val parse : Machine.t -> string list -> partial_run

(** Does the configuration match the partial configuration? *)
val matches : Machine.config -> partial_config -> bool

(** All configurations of string length [n] matching the partial
    configuration. *)
val completions : Machine.t -> int -> partial_config -> Machine.config list

(** An accepting run matching the partial run, if any. *)
val solve : Machine.t -> partial_run -> Machine.config list option

val fits : Machine.t -> partial_run -> bool
