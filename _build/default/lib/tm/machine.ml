(* Non-deterministic Turing machines with a single one-sided infinite
   tape, represented as in Section 7: configurations are strings vqw
   over Σ ∪ Q, with q the state and the head on the first symbol of w. *)

type direction = L | R

type transition = {
  from_state : string;
  read : string;
  to_state : string;
  write : string;
  move : direction;
}

type t = {
  name : string;
  states : string list;
  alphabet : string list;  (** includes the blank *)
  blank : string;
  delta : transition list;
  start : string;
  accept : string;
}

exception Bad_machine of string

let make ~name ~states ~alphabet ~blank ~delta ~start ~accept =
  let m = { name; states; alphabet; blank; delta; start; accept } in
  if not (List.mem blank alphabet) then
    raise (Bad_machine "blank symbol not in alphabet");
  if not (List.mem start states && List.mem accept states) then
    raise (Bad_machine "start/accept state not declared");
  List.iter
    (fun tr ->
      if
        not
          (List.mem tr.from_state states
          && List.mem tr.to_state states
          && List.mem tr.read alphabet
          && List.mem tr.write alphabet)
      then raise (Bad_machine "transition uses undeclared state or symbol");
      if tr.from_state = accept then
        raise (Bad_machine "the accepting state must have no successors"))
    m.delta;
  m

(* A configuration of fixed tape length: [tape] are the symbols, the
   head is at [head], the machine in [state]. Corresponds to the string
   tape[0..head-1] state tape[head..]. *)
type config = {
  tape : string array;
  head : int;
  state : string;
}

let config_length c = Array.length c.tape + 1

let initial m input ~length =
  let n = List.length input in
  if length < n + 1 then invalid_arg "Machine.initial: tape too short";
  {
    tape = Array.init (length - 1) (fun i -> if i < n then List.nth input i else m.blank);
    head = 0;
    state = m.start;
  }

let is_accepting m c = c.state = m.accept

(* One computation step; moves that would leave the fixed-length tape
   are dropped (runs in the run fitting problem have uniform length). *)
let successors m c =
  if c.head >= Array.length c.tape then []
  else
    let sym = c.tape.(c.head) in
    List.filter_map
      (fun tr ->
        if tr.from_state = c.state && tr.read = sym then begin
          let tape = Array.copy c.tape in
          tape.(c.head) <- tr.write;
          let head = match tr.move with L -> c.head - 1 | R -> c.head + 1 in
          if head < 0 || head > Array.length tape then None
          else Some { tape; head; state = tr.to_state }
        end
        else None)
      m.delta

let pp_config ppf c =
  let parts =
    Array.to_list (Array.mapi (fun i s -> (i, s)) c.tape)
    |> List.concat_map (fun (i, s) -> if i = c.head then [ c.state; s ] else [ s ])
  in
  let parts = if c.head >= Array.length c.tape then parts @ [ c.state ] else parts in
  Fmt.(list ~sep:(any "") string) ppf parts

(* ------------------------------------------------------------------ *)
(* Sample machines                                                      *)
(* ------------------------------------------------------------------ *)

(* Accepts words over {a,b} containing an 'a': scans right. *)
let find_a =
  make ~name:"find_a"
    ~states:[ "q0"; "qa" ]
    ~alphabet:[ "a"; "b"; "_" ]
    ~blank:"_"
    ~delta:
      [
        { from_state = "q0"; read = "b"; to_state = "q0"; write = "b"; move = R };
        { from_state = "q0"; read = "a"; to_state = "qa"; write = "a"; move = R };
      ]
    ~start:"q0" ~accept:"qa"

(* A non-deterministic machine guessing a bit and verifying parity. *)
let guess_parity =
  make ~name:"guess_parity"
    ~states:[ "q0"; "even"; "odd"; "qa" ]
    ~alphabet:[ "1"; "_" ]
    ~blank:"_"
    ~delta:
      [
        { from_state = "q0"; read = "1"; to_state = "odd"; write = "1"; move = R };
        { from_state = "odd"; read = "1"; to_state = "even"; write = "1"; move = R };
        { from_state = "even"; read = "1"; to_state = "odd"; write = "1"; move = R };
        { from_state = "even"; read = "_"; to_state = "qa"; write = "_"; move = R };
      ]
    ~start:"q0" ~accept:"qa"
