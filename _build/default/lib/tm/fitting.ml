(* The run fitting problem (Definition 8): given a partial run — a
   sequence of partial configurations with wildcards — decide whether
   some accepting run of M matches it. In NP for every M; solved here by
   backtracking over completions of successive configurations. *)

type cell =
  | Sym of string
  | State of string
  | Wild

type partial_config = cell array

type partial_run = partial_config list

exception Bad_partial_run of string

let parse_cell m s =
  if s = "?" then Wild
  else if List.mem s m.Machine.states then State s
  else if List.mem s m.Machine.alphabet then Sym s
  else raise (Bad_partial_run (Printf.sprintf "unknown cell %S" s))

(* Parse a partial run from rows of whitespace-separated cells. *)
let parse m rows =
  let run = List.map (fun row -> Array.of_list (List.map (parse_cell m) (String.split_on_char ' ' (String.trim row)))) rows in
  (match run with
  | [] -> raise (Bad_partial_run "empty partial run")
  | first :: rest ->
      let n = Array.length first in
      if List.exists (fun r -> Array.length r <> n) rest then
        raise (Bad_partial_run "rows of different lengths"));
  List.iter
    (fun r ->
      let states =
        Array.to_list r
        |> List.filter (function State _ -> true | _ -> false)
        |> List.length
      in
      if states > 1 then
        raise (Bad_partial_run "more than one state cell in a row"))
    run;
  run

(* Does configuration [c] match partial configuration [pc]? The string
   of c has length |tape|+1. *)
let matches (c : Machine.config) (pc : partial_config) =
  Machine.config_length c = Array.length pc
  &&
  let cell_at i =
    if i < c.head then Sym c.tape.(i)
    else if i = c.head then State c.state
    else Sym c.tape.(i - 1)
  in
  Array.for_all (fun x -> x)
    (Array.mapi
       (fun i pcell ->
         match pcell with
         | Wild -> true
         | other -> other = cell_at i)
       pc)

(* All configurations of string length [n] matching [pc]. *)
let completions m n pc =
  (* choose head position (where the state symbol sits) *)
  let positions =
    match
      Array.to_list pc
      |> List.mapi (fun i c -> (i, c))
      |> List.filter (fun (_, c) -> match c with State _ -> true | _ -> false)
    with
    | [ (i, _) ] -> [ i ]
    | [] ->
        (* any position whose cell is a wildcard *)
        Array.to_list pc
        |> List.mapi (fun i c -> (i, c))
        |> List.filter_map (fun (i, c) -> if c = Wild then Some i else None)
    | _ -> []
  in
  List.concat_map
    (fun head ->
      let states =
        match pc.(head) with
        | State q -> [ q ]
        | Wild -> m.Machine.states
        | Sym _ -> []
      in
      List.concat_map
        (fun state ->
          (* fill tape cells left to right *)
          let rec fill i acc =
            if i >= n then List.map (fun tape -> { Machine.tape = Array.of_list (List.rev tape); head; state }) acc
            else if i = head then fill (i + 1) acc
            else
              let choices =
                match pc.(i) with
                | Sym s -> [ s ]
                | Wild -> m.Machine.alphabet
                | State _ -> []
              in
              fill (i + 1)
                (List.concat_map (fun tape -> List.map (fun s -> s :: tape) choices) acc)
          in
          fill 0 [ [] ])
        states)
    positions

(* Decide the run fitting problem: is there an accepting run matching
   the partial run? *)
let solve m (pr : partial_run) =
  match pr with
  | [] -> None
  | first :: rest ->
      let n = Array.length first in
      (* configurations strictly after [config] matching [remaining] *)
      let rec extend config remaining =
        match remaining with
        | [] -> if Machine.is_accepting m config then Some [] else None
        | pc :: rest' ->
            List.find_map
              (fun succ ->
                if matches succ pc then
                  match extend succ rest' with
                  | Some run -> Some (succ :: run)
                  | None -> None
                else None)
              (Machine.successors m config)
      in
      List.find_map
        (fun start ->
          match extend start rest with
          | Some run -> Some (start :: run)
          | None -> None)
        (completions m n first)

let fits m pr = Option.is_some (solve m pr)
