(* The finite rectangle tiling problem (Section 7 / Appendix H): tile
   types with horizontal and vertical matching relations, an initial
   tile for the lower-left corner and a final tile for the upper-right
   corner. Undecidable in general; solved here by bounded search. *)

type t = {
  tiles : string list;
  h : (string * string) list;  (** horizontal matching *)
  v : (string * string) list;  (** vertical matching *)
  init : string;
  final : string;
}

exception Bad_problem of string

let make ~tiles ~h ~v ~init ~final =
  let p = { tiles; h; v; init; final } in
  if not (List.mem init tiles && List.mem final tiles) then
    raise (Bad_problem "init/final tile not declared");
  List.iter
    (fun (a, b) ->
      if not (List.mem a tiles && List.mem b tiles) then
        raise (Bad_problem "matching relation uses undeclared tile"))
    (h @ v);
  p

(* A tiling of {0..n} × {0..m} as a matrix f.(i).(j), i.e. column i,
   row j. *)
type tiling = string array array

let valid p (f : tiling) =
  let n = Array.length f - 1 in
  let m = Array.length f.(0) - 1 in
  let ok = ref (f.(0).(0) = p.init && f.(n).(m) = p.final) in
  for i = 0 to n do
    for j = 0 to m do
      let t = f.(i).(j) in
      if t = p.init && (i, j) <> (0, 0) then ok := false;
      if t = p.final && (i, j) <> (n, m) then ok := false;
      if i < n && not (List.mem (t, f.(i + 1).(j)) p.h) then ok := false;
      if j < m && not (List.mem (t, f.(i).(j + 1)) p.v) then ok := false
    done
  done;
  !ok

(* Backtracking search for a tiling of a fixed (n+1) × (m+1) rectangle. *)
let solve_fixed p n m =
  let f = Array.make_matrix (n + 1) (m + 1) "" in
  let allowed i j t =
    (if (i, j) = (0, 0) then t = p.init else t <> p.init)
    && (if (i, j) = (n, m) then t = p.final else t <> p.final)
    && (i = 0 || List.mem (f.(i - 1).(j), t) p.h)
    && (j = 0 || List.mem (f.(i).(j - 1), t) p.v)
  in
  (* fill column-major within rows: position k = j * (n+1) + i *)
  let total = (n + 1) * (m + 1) in
  let rec go k =
    if k = total then true
    else
      let i = k mod (n + 1) and j = k / (n + 1) in
      List.exists
        (fun t ->
          if allowed i j t then begin
            f.(i).(j) <- t;
            go (k + 1) || (f.(i).(j) <- "";
                           false)
          end
          else false)
        p.tiles
  in
  if go 0 then Some (Array.map Array.copy f) else None

(* Search all rectangles with both sides <= the bounds. *)
let solve ?(max_n = 4) ?(max_m = 4) p =
  let rec over_n n =
    if n > max_n then None
    else
      let rec over_m m =
        if m > max_m then None
        else
          match solve_fixed p n m with
          | Some f -> Some f
          | None -> over_m (m + 1)
      in
      match over_m 0 with Some f -> Some f | None -> over_n (n + 1)
  in
  over_n 0

let admits_tiling ?max_n ?max_m p = Option.is_some (solve ?max_n ?max_m p)

(* The grid instance representing a tiled rectangle: X/Y edges and tile
   labels (the input encoding of Theorem 10). *)
let grid_instance (f : tiling) =
  let n = Array.length f - 1 in
  let m = Array.length f.(0) - 1 in
  let node i j = Structure.Element.Const (Printf.sprintf "g_%d_%d" i j) in
  let inst = ref Structure.Instance.empty in
  for i = 0 to n do
    for j = 0 to m do
      inst := Structure.Instance.add_fact (Structure.Instance.fact f.(i).(j) [ node i j ]) !inst;
      if i < n then
        inst := Structure.Instance.add_fact (Structure.Instance.fact "X" [ node i j; node (i + 1) j ]) !inst;
      if j < m then
        inst := Structure.Instance.add_fact (Structure.Instance.fact "Y" [ node i j; node i (j + 1) ]) !inst
    done
  done;
  !inst

(* A trivial solvable problem (used by Lemma 4) and an unsolvable one. *)
let trivial =
  make
    ~tiles:[ "I"; "B"; "F" ]
    ~h:[ ("I", "B"); ("B", "B"); ("B", "F"); ("I", "F") ]
    ~v:[ ("I", "B"); ("B", "B"); ("B", "F"); ("I", "F") ]
    ~init:"I" ~final:"F"

let unsolvable =
  (* the final tile can never be placed next to anything *)
  make ~tiles:[ "I"; "B"; "F" ]
    ~h:[ ("I", "B"); ("B", "B") ]
    ~v:[ ("I", "B"); ("B", "B") ]
    ~init:"I" ~final:"F"
