module C = Dl.Concept

(* The Theorem 10 construction: ALCIF` ontologies of depth 2 that
   verify grid cells (Ocell) and properly tiled grids (OP) by
   propagating markers of the form (= 1 R) — "exactly one R-successor" —
   which input instances cannot preset positively.

   Border markers are renamed against tile-name collisions:
   U→Up, R→Rt, L→Lf, D→Dn, A→Acc, F→Fin. *)

(* ------------------------------------------------------------------ *)
(* Words over {X, Y, X⁻, Y⁻} and the auxiliary relations R^W_i          *)
(* ------------------------------------------------------------------ *)

type letter = LX | LY | LXi | LYi

let letter_role = function
  | LX -> C.Name "X"
  | LY -> C.Name "Y"
  | LXi -> C.Inv "X"
  | LYi -> C.Inv "Y"

let letter_name = function LX -> "X" | LY -> "Y" | LXi -> "Xm" | LYi -> "Ym"

type word = letter list

let word_name w = String.concat "" (List.map letter_name w)

(* R^W_i; the empty word gives the base marker relation R_i. *)
let marker_rel i w =
  match w with
  | [] -> Printf.sprintf "R%d" i
  | _ -> Printf.sprintf "R%d_%s" i (word_name w)

(* (= 1 R): exactly one successor for the binary relation [r]. *)
let eq_one r = C.And (C.Exists (C.Name r, C.Top), C.leq_one (C.Name r))

let marker i w = eq_one (marker_rel i w)

(* Non-empty suffixes of a word. *)
let rec suffixes = function
  | [] -> []
  | _ :: rest as w -> w :: suffixes rest

let word_c = [ LXi; LYi; LX; LY ]  (* X⁻Y⁻XY *)
let word_cc = word_c @ word_c
let word_c' = [ LYi; LXi; LY; LX ]  (* Y⁻X⁻YX *)
let word_xy = [ LX; LY ]
let word_yx = [ LY; LX ]

let all_words =
  List.sort_uniq compare
    (List.concat_map suffixes [ word_xy; word_yx; word_c; word_cc; word_c' ])

(* Every auxiliary relation of Ocell. *)
let aux_cell =
  "P"
  :: List.concat_map (fun i -> List.map (marker_rel i) ([] :: all_words)) [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Ocell: marking lower-left corners of closed grid cells               *)
(* ------------------------------------------------------------------ *)

let grid_functionality =
  List.map
    (fun role -> Dl.Tbox.Sub (C.Top, C.leq_one role))
    [ C.Name "X"; C.Name "Y"; C.Inv "X"; C.Inv "Y" ]

let exists_top relations =
  List.map (fun q -> Dl.Tbox.Sub (C.Top, C.Exists (C.Name q, C.Top))) relations

(* Definitional axioms: (= 1 R^{ZW}_i) ≡ ∃Z.(= 1 R^W_i). *)
let definitional_axioms =
  List.concat_map
    (fun i ->
      List.concat_map
        (fun w ->
          match w with
          | [] -> []
          | z :: rest ->
              Dl.Tbox.equivalence (marker i w)
                (C.Exists (letter_role z, marker i rest)))
        all_words)
    [ 1; 2 ]

let ontology_cell =
  let r12 = C.And (marker 1 [], marker 2 []) in
  grid_functionality
  @ exists_top aux_cell
  (* every node carries R1 or R2 exactly-once *)
  @ [ Dl.Tbox.Sub (C.Top, C.Or (marker 1 [], marker 2 [])) ]
  (* closed cell detection *)
  @ [
      Dl.Tbox.Sub
        ( C.conj
            [ marker 1 word_xy; marker 1 word_yx; marker 2 word_xy; marker 2 word_yx ],
          eq_one "P" );
    ]
  (* at least every third node on X⁻Y⁻XY-cycles carries (=1 R_i) *)
  @ List.map
      (fun (i, j) ->
        Dl.Tbox.Sub
          ( marker j word_cc,
            C.disj [ marker i []; marker i word_c; marker i word_cc ] ))
      [ (1, 2); (2, 1) ]
  (* if both (=1 R1),(=1 R2) hold somewhere, they hold at neighbours *)
  @ List.map
      (fun w -> Dl.Tbox.Sub (C.And (marker 1 w, marker 2 w), r12))
      [ word_c; word_c' ]
  @ definitional_axioms

(* The combinatorial condition cell(d) the markers verify. *)
let cell_holds d e =
  let succ rel x =
    List.find_map
      (fun (f : Structure.Instance.fact) ->
        match f.args with
        | [ a; b ] when f.rel = rel && Structure.Element.equal a x -> Some b
        | _ -> None)
      (Structure.Instance.incident x d)
  in
  match (succ "X" e, succ "Y" e) with
  | Some d1, Some d2 -> (
      match (succ "Y" d1, succ "X" d2) with
      | Some d3, Some d3' -> Structure.Element.equal d3 d3'
      | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* OP: verifying properly tiled grids                                   *)
(* ------------------------------------------------------------------ *)

let aux_grid = [ "Fin"; "FinX"; "FinY"; "Up"; "Rt"; "Lf"; "Dn"; "Acc" ]

let fin = eq_one "Fin"
let up = eq_one "Up"
let rt = eq_one "Rt"
let lf = eq_one "Lf"
let dn = eq_one "Dn"
let acc = eq_one "Acc"
let finx = eq_one "FinX"
let finy = eq_one "FinY"

let tile t = C.Atomic t

(* OP for a tiling problem (Figure 4 of the appendix). *)
let ontology_p (p : Tiling.t) =
  let triples =
    List.concat_map
      (fun ti ->
        List.concat_map
          (fun tj ->
            List.filter_map
              (fun tl ->
                if List.mem (ti, tj) p.Tiling.h && List.mem (ti, tl) p.Tiling.v
                then Some (ti, tj, tl)
                else None)
              p.Tiling.tiles)
          p.Tiling.tiles)
      p.Tiling.tiles
  in
  let distinct_tile_pairs =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun t -> if String.compare s t < 0 then Some (s, t) else None)
          p.Tiling.tiles)
      p.Tiling.tiles
  in
  ontology_cell
  @ exists_top aux_grid
  @ [
      (* the final tile starts the verification at the upper right *)
      Dl.Tbox.Sub (tile p.Tiling.final, C.conj [ fin; up; rt ]);
      (* marker bookkeeping to stay within depth 2 *)
      Dl.Tbox.Sub (C.Exists (C.Name "Y", fin), finy);
      Dl.Tbox.Sub (C.Exists (C.Name "X", fin), finx);
      (* reaching the initial tile completes the verification *)
      Dl.Tbox.Sub (C.And (fin, tile p.Tiling.init), C.conj [ acc; dn; lf ]);
      (* border behaviour *)
      Dl.Tbox.Sub (up, C.Forall (C.Name "Y", C.Bot));
      Dl.Tbox.Sub (rt, C.Forall (C.Name "X", C.Bot));
      Dl.Tbox.Sub (up, C.Forall (C.Name "X", up));
      Dl.Tbox.Sub (rt, C.Forall (C.Name "Y", rt));
      Dl.Tbox.Sub (dn, C.Forall (C.Inv "Y", C.Bot));
      Dl.Tbox.Sub (lf, C.Forall (C.Inv "X", C.Bot));
      Dl.Tbox.Sub (dn, C.Forall (C.Name "X", dn));
      Dl.Tbox.Sub (lf, C.Forall (C.Name "Y", lf));
    ]
  (* top-row propagation along H *)
  @ List.filter_map
      (fun (ti, tj) ->
        if List.mem (ti, tj) p.Tiling.h then
          Some
            (Dl.Tbox.Sub
               ( C.And
                   (C.Exists (C.Name "X", C.conj [ up; fin; tile tj ]), tile ti),
                 C.And (up, fin) ))
        else None)
      (List.concat_map
         (fun a -> List.map (fun b -> (a, b)) p.Tiling.tiles)
         p.Tiling.tiles)
  (* right-column propagation along V *)
  @ List.filter_map
      (fun (ti, tl) ->
        if List.mem (ti, tl) p.Tiling.v then
          Some
            (Dl.Tbox.Sub
               ( C.And
                   (C.Exists (C.Name "Y", C.conj [ rt; fin; tile tl ]), tile ti),
                 C.And (rt, fin) ))
        else None)
      (List.concat_map
         (fun a -> List.map (fun b -> (a, b)) p.Tiling.tiles)
         p.Tiling.tiles)
  (* interior propagation through closed cells *)
  @ List.map
      (fun (ti, tj, tl) ->
        Dl.Tbox.Sub
          ( C.conj
              [
                C.Exists (C.Name "X", C.conj [ tile tj; fin; finy ]);
                C.Exists (C.Name "Y", C.conj [ tile tl; fin; finx ]);
                eq_one "P";
                tile ti;
              ],
            fin ))
      triples
  (* tiles are mutually exclusive *)
  @ List.map
      (fun (s, t) -> Dl.Tbox.Sub (C.And (tile s, tile t), C.Bot))
      distinct_tile_pairs

(* The Theorem 10 / Lemma 13 ontology: OP plus the triggered
   disjunction. *)
let ontology_undecidability p =
  ontology_p p
  @ [ Dl.Tbox.Sub (acc, C.Or (C.Atomic "B1", C.Atomic "B2")) ]
  @ exists_top [ "B1aux" ]

(* ------------------------------------------------------------------ *)
(* grid(d): the combinatorial condition OP verifies                     *)
(* ------------------------------------------------------------------ *)

let successor d rel x =
  List.filter_map
    (fun (f : Structure.Instance.fact) ->
      match f.args with
      | [ a; b ] when f.rel = rel && Structure.Element.equal a x -> Some b
      | _ -> None)
    (Structure.Instance.incident x d)

let tiles_of p d x =
  List.filter
    (fun t ->
      Structure.Instance.mem (Structure.Instance.fact t [ x ]) d)
    p.Tiling.tiles

(* D ⊨ grid(d): d is the lower-left corner (root) of a closed, properly
   tiled n × m grid embedded in D. *)
let grid_holds (p : Tiling.t) d e =
  let unique_succ rel x =
    match successor d rel x with [ y ] -> Some y | [] -> None | _ -> None
  in
  let functional rel x = List.length (successor d rel x) <= 1 in
  (* follow the X-chain from e for the width, Y-chain for the height *)
  let rec chain rel x acc =
    if List.length acc > Structure.Instance.domain_size d then None
    else
      match unique_succ rel x with
      | None -> if functional rel x then Some (List.rev acc) else None
      | Some y -> chain rel y (y :: acc)
  in
  match (chain "X" e [ e ], chain "Y" e [ e ]) with
  | Some xs, Some ys -> (
      let n = List.length xs - 1 and m = List.length ys - 1 in
      let gamma = Array.make_matrix (n + 1) (m + 1) e in
      List.iteri (fun i x -> gamma.(i).(0) <- x) xs;
      List.iteri (fun j y -> gamma.(0).(j) <- y) ys;
      let ok = ref true in
      for j = 1 to m do
        for i = 1 to n do
          match (unique_succ "X" gamma.(i - 1).(j), unique_succ "Y" gamma.(i).(j - 1)) with
          | Some a, Some b when Structure.Element.equal a b -> gamma.(i).(j) <- a
          | _ -> ok := false
        done
      done;
      if not !ok then false
      else begin
        (* read the tiling off the labels *)
        let f = Array.make_matrix (n + 1) (m + 1) "" in
        for i = 0 to n do
          for j = 0 to m do
            match tiles_of p d gamma.(i).(j) with
            | [ t ] -> f.(i).(j) <- t
            | _ -> ok := false
          done
        done;
        !ok && Tiling.valid p f
        &&
        (* closure: grid nodes have no stray X/Y edges *)
        let in_grid x =
          Array.exists (fun col -> Array.exists (Structure.Element.equal x) col) gamma
        in
        Array.for_all
          (fun col ->
            Array.for_all
              (fun x ->
                List.for_all in_grid (successor d "X" x)
                && List.for_all in_grid (successor d "Y" x)
                && functional "X" x && functional "Y" x)
              col)
          gamma
      end)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Lemma 4: simulating the run fitting problem on the grid             *)
(* ------------------------------------------------------------------ *)

(* Markers for states and tape symbols use (≥ 2 S) — "at least two
   S-successors" — which inputs can preset positively but not
   negatively, matching the run fitting problem where cells may be
   constrained but never forbidden (Section 7). *)
let geq2 r = C.AtLeast (2, C.Name r, C.Top)

let sym_rel s = "Sym_" ^ s
let state_rel q = "St_" ^ q

(* Marker shifted along a word of X-steps (for reading neighbouring
   cells within depth 2). *)
let shifted_rel base = function
  | 0 -> base
  | k -> Printf.sprintf "%s_X%d" base k

(* The Lemma 4 ontology O_M for machine [m], on top of the grid
   verification O_P of a trivial tiling problem: grid columns carry tape
   positions (X), rows carry time (Y). The accepting state triggers the
   B1 ⊔ B2 disjunction. *)
let ontology_m (m : Machine.t) =
  let p = Tiling.trivial in
  let cell_markers =
    List.map sym_rel m.Machine.alphabet @ List.map state_rel m.Machine.states
  in
  let shifted =
    List.concat_map (fun r -> [ shifted_rel r 1; shifted_rel r 2 ]) cell_markers
  in
  let base = ontology_p p in
  let acc_marker = eq_one "Acc" in
  (* every auxiliary relation is inhabited *)
  base
  @ exists_top (cell_markers @ shifted)
  (* the run-verification marker (=1 Acc) spreads over the grid *)
  @ [
      Dl.Tbox.Sub (acc_marker, C.Forall (C.Name "X", acc_marker));
      Dl.Tbox.Sub (acc_marker, C.Forall (C.Name "Y", acc_marker));
    ]
  (* every verified grid point carries exactly one cell content *)
  @ [
      Dl.Tbox.Sub
        ( acc_marker,
          C.disj (List.map geq2 cell_markers) );
    ]
  @ (let rec pairs = function
       | [] -> []
       | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
     in
     List.map
       (fun (h1, h2) ->
         Dl.Tbox.Sub (C.conj [ acc_marker; geq2 h1; geq2 h2 ], C.Bot))
       (pairs cell_markers))
  (* marker bookkeeping: (≥2 S^Xk) ≡ ∃X.(≥2 S^X(k-1)) *)
  @ List.concat_map
      (fun r ->
        Dl.Tbox.equivalence (geq2 (shifted_rel r 1)) (C.Exists (C.Name "X", geq2 r))
        @ Dl.Tbox.equivalence
            (geq2 (shifted_rel r 2))
            (C.Exists (C.Name "X", geq2 (shifted_rel r 1))))
      cell_markers
  (* transitions: a window G0 q G1 at time t determines the possible
     windows at time t+1 (via the Y-successor row) *)
  @ (let successor_triples g0 q g1 =
       (* the head reads g1; writing w and moving left/right yields the
          windows below (state at position 0 for L, position 2 for R) *)
       List.filter_map
         (fun (tr : Machine.transition) ->
           if tr.from_state = q && tr.read = g1 then
             match tr.move with
             | Machine.L -> Some (state_rel tr.to_state, sym_rel g0, sym_rel tr.write)
             | Machine.R -> Some (sym_rel g0, sym_rel tr.write, state_rel tr.to_state)
           else None)
         m.Machine.delta
     in
     List.concat_map
       (fun g0 ->
         List.concat_map
           (fun q ->
             List.filter_map
               (fun g1 ->
                 match successor_triples g0 q g1 with
                 | [] -> None
                 | triples ->
                     Some
                       (Dl.Tbox.Sub
                          ( C.conj
                              [
                                acc_marker;
                                geq2 (sym_rel g0);
                                geq2 (shifted_rel (state_rel q) 1);
                                geq2 (shifted_rel (sym_rel g1) 2);
                              ],
                            C.disj
                              (List.map
                                 (fun (s1, s2, s3) ->
                                   C.Exists
                                     ( C.Name "Y",
                                       C.conj
                                         [
                                           geq2 s1;
                                           geq2 (shifted_rel s2 1);
                                           geq2 (shifted_rel s3 2);
                                         ] ))
                                 triples) )))
               m.Machine.alphabet)
           m.Machine.states)
       m.Machine.alphabet)
  (* reaching the accepting state triggers the disjunction *)
  @ [
      Dl.Tbox.Sub
        ( C.And (acc_marker, geq2 (state_rel m.Machine.accept)),
          C.Or (C.Atomic "B1", C.Atomic "B2") );
    ]
