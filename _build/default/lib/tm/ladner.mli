(** Executable scaffolding for the run-fitting variant of Ladner's
    theorem (Theorem 12): the padding function H and its
    diagonalisation structure, over a caller-supplied enumeration of
    deciders standing in for the machine enumeration M{_0}, M{_1}, … *)

type enumeration = int -> string -> bool

val ilog2 : int -> int

(** All strings over the alphabet of length ≤ l. *)
val strings_up_to : char list -> int -> string list

(** H(n) = min \{ i < log log n | M{_i} agrees with the oracle on all
    strings of length ≤ log n \}, else log log n. *)
val h_function :
  enumeration:enumeration ->
  oracle:(string -> bool) ->
  ?alphabet:char list ->
  int ->
  int

(** n^H(n): the padded input length of the Theorem 12 machine. *)
val padded_input_length : h:int -> int -> int

(** Lemma 14 at sampling scale: H is eventually constant iff some
    enumerated machine decides the oracle language. *)
val eventually_constant :
  enumeration:enumeration ->
  oracle:(string -> bool) ->
  ?alphabet:char list ->
  up_to:int ->
  unit ->
  bool
