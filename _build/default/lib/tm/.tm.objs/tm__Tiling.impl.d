lib/tm/tiling.ml: Array List Option Printf Structure
