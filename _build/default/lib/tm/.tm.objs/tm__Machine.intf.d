lib/tm/machine.mli: Fmt
