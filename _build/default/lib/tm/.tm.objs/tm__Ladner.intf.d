lib/tm/ladner.mli:
