lib/tm/fitting.mli: Machine
