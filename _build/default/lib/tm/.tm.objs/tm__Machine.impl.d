lib/tm/machine.ml: Array Fmt List
