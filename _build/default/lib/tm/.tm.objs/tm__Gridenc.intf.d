lib/tm/gridenc.mli: Dl Machine Structure Tiling
