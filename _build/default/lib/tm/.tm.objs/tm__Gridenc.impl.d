lib/tm/gridenc.ml: Array Dl List Machine Printf String Structure Tiling
