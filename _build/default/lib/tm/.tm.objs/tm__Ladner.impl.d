lib/tm/ladner.ml: Bool List String
