lib/tm/fitting.ml: Array List Machine Option Printf String
