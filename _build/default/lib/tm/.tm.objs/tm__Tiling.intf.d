lib/tm/tiling.mli: Structure
