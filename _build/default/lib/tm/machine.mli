(** Non-deterministic Turing machines with one one-sided tape
    (Section 7). Configurations are strings vqw with the head on the
    first symbol of w; here with a fixed tape length, since the runs of
    the run fitting problem have uniform configuration length. *)

type direction = L | R

type transition = {
  from_state : string;
  read : string;
  to_state : string;
  write : string;
  move : direction;
}

type t = {
  name : string;
  states : string list;
  alphabet : string list;
  blank : string;
  delta : transition list;
  start : string;
  accept : string;
}

exception Bad_machine of string

(** @raise Bad_machine on undeclared symbols or an accepting state with
    successors. *)
val make :
  name:string ->
  states:string list ->
  alphabet:string list ->
  blank:string ->
  delta:transition list ->
  start:string ->
  accept:string ->
  t

type config = {
  tape : string array;
  head : int;
  state : string;
}

(** Length of the configuration string (tape length + 1). *)
val config_length : config -> int

(** The start configuration on [input], padded with blanks to a string
    of length [length]. *)
val initial : t -> string list -> length:int -> config

val is_accepting : t -> config -> bool

(** One-step successors (within the fixed tape length). *)
val successors : t -> config -> config list

val pp_config : config Fmt.t

(** Sample machine: accepts words over \{a,b\} containing an 'a'. *)
val find_a : t

(** Sample non-deterministic machine: accepts an even number of 1s via
    guessing. *)
val guess_parity : t
