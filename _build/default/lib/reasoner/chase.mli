(** The restricted chase for existential rules (TGDs) and equality
    generating dependencies. For Horn ontologies the chase result is a
    universal model, hence computes certain answers exactly. *)

type rule = {
  name : string;
  body : Query.Cq.atom list;
  head : Query.Cq.atom list;
}

type egd = {
  ename : string;
  ebody : Query.Cq.atom list;
  left : string;
  right : string;
}

val rule : ?name:string -> body:Query.Cq.atom list -> head:Query.Cq.atom list -> unit -> rule

val egd :
  ?name:string ->
  body:Query.Cq.atom list ->
  left:string ->
  right:string ->
  unit ->
  egd

exception Egd_failure of string

type result = {
  instance : Structure.Instance.t;
  saturated : bool;
}

(** Run the restricted chase for at most [max_rounds] rounds.
    @raise Egd_failure when an EGD equates distinct constants. *)
val run :
  ?max_rounds:int -> ?egds:egd list -> rule list -> Structure.Instance.t -> result

(** Certain answer over the chase result; inconsistent instances entail
    everything. *)
val certain_cq :
  ?max_rounds:int ->
  ?egds:egd list ->
  rule list ->
  Structure.Instance.t ->
  Query.Cq.t ->
  Structure.Element.t list ->
  bool
