(** A small DPLL SAT solver (unit propagation, chronological
    backtracking) used by the bounded model finder. Literals are
    non-zero integers ±v for 1-based variables. *)

type result =
  | Sat of bool array
  | Unsat

val solve : nvars:int -> int list list -> result

(** Truth of a literal in a model array. *)
val lit_true : bool array -> int -> bool

(** Enumerate models projected onto the [project]ed literals, blocking
    each projection; stops at [limit]. *)
val enumerate :
  nvars:int ->
  project:int list ->
  ?limit:int ->
  int list list ->
  bool array list
