lib/reasoner/bounded.ml: Ground List Logic Option Query Structure
