lib/reasoner/ground.mli: Logic Structure
