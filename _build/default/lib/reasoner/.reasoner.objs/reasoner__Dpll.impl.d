lib/reasoner/dpll.ml: Array List
