lib/reasoner/ground.ml: Array Dpll Fmt Hashtbl List Logic Structure
