lib/reasoner/bounded.mli: Logic Query Structure
