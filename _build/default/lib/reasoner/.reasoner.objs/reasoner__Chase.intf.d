lib/reasoner/chase.mli: Query Structure
