lib/reasoner/chase.ml: Fmt List Logic Query Structure
