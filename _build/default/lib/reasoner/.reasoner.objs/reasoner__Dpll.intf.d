lib/reasoner/dpll.mli:
