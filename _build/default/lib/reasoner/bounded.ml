module SMap = Logic.Names.SMap

(* Bounded model finding for arbitrary uGF(=)/uGC2(=) (indeed FO)
   ontologies: search for models of O and D whose domain is dom(D) plus
   [extra] fresh labelled nulls. Sound and complete for refuting
   entailments (a countermodel is a countermodel); complete for
   establishing them only up to the domain bound. GF and GC2 have the
   finite model property, so iterative deepening converges in the limit;
   every experiment records the bound it used. *)

let problem ?(extra_signature = Logic.Signature.empty) ~extra o d =
  let nulls = Structure.Instance.fresh_nulls extra d in
  let domain = Structure.Instance.domain_list d @ nulls in
  let domain =
    (* Interpretations are non-empty. *)
    if domain = [] then [ Structure.Element.Const "e0" ] else domain
  in
  let signature =
    Logic.Signature.union
      (Logic.Ontology.signature o)
      (Logic.Signature.union (Structure.Instance.signature d) extra_signature)
  in
  let g = Ground.create ~domain ~signature in
  Ground.assert_instance g d;
  List.iter (Ground.assert_formula g) (Logic.Ontology.all_sentences o);
  g

(* A model of O and D over dom(D) + [extra] nulls, if any. *)
let find_model ?(extra = 0) o d = Ground.solve (problem ~extra o d)

let is_consistent ?(max_extra = 2) o d =
  let rec go k =
    k <= max_extra
    && (Option.is_some (find_model ~extra:k o d) || go (k + 1))
  in
  go 0

(* All models over the bounded domain (for materializability search). *)
let models ?(extra = 0) ?limit o d = Ground.enumerate ?limit (problem ~extra o d)

(* ------------------------------------------------------------------ *)
(* Certain answers                                                      *)
(* ------------------------------------------------------------------ *)

let answer_env (q : Query.Cq.t) tuple =
  List.fold_left2
    (fun env v e -> SMap.add v e env)
    SMap.empty q.Query.Cq.answer tuple

(* A countermodel to O,D |= q(ā) with [extra] fresh nulls, if any. *)
let countermodel ?(extra = 0) o d (q : Query.Ucq.t) tuple =
  if List.length tuple <> Query.Ucq.arity q then
    invalid_arg "Bounded.countermodel: tuple arity mismatch";
  let g = problem ~extra_signature:(Query.Ucq.signature q) ~extra o d in
  List.iter
    (fun cq ->
      Ground.assert_negation ~env:(answer_env cq tuple) g
        (Query.Cq.to_formula cq))
    (Query.Ucq.disjuncts q);
  Ground.solve g

(* O,D |= q(ā), up to [max_extra] additional domain elements: no
   countermodel at any bound 0..max_extra. *)
let certain_ucq ?(max_extra = 2) o d q tuple =
  let rec go k =
    if k > max_extra then true
    else
      match countermodel ~extra:k o d q tuple with
      | Some _ -> false
      | None -> go (k + 1)
  in
  go 0

let certain_cq ?max_extra o d q tuple =
  certain_ucq ?max_extra o d (Query.Ucq.of_cq q) tuple

(* Certain truth of an arbitrary FO(=, counting) formula under an
   assignment: no bounded model of O and D refutes it. Used for
   non-query conditions such as the (=1 P) markers of Section 7. *)
let certain_formula ?(max_extra = 2) ?(env = SMap.empty) o d f =
  let rec go k =
    if k > max_extra then true
    else begin
      let g = problem ~extra_signature:(Logic.Signature.of_formula f) ~extra:k o d in
      Ground.assert_negation ~env g f;
      match Ground.solve g with Some _ -> false | None -> go (k + 1)
    end
  in
  go 0

(* A model of O and D over dom(D)+extra nulls satisfying exactly the
   flagged pointed queries: entries (q, ā, true) are asserted, entries
   (q, ā, false) refuted. Used by the materializability search. *)
let pool_exact_model ?(extra = 0) o d flagged =
  let sig_q =
    List.fold_left
      (fun s (q, _, _) -> Logic.Signature.union s (Query.Cq.signature q))
      Logic.Signature.empty flagged
  in
  let g = problem ~extra_signature:sig_q ~extra o d in
  List.iter
    (fun (q, tuple, wanted) ->
      let env = answer_env q tuple in
      let f = Query.Cq.to_formula q in
      if wanted then Ground.assert_formula ~env g f
      else Ground.assert_negation ~env g f)
    flagged;
  Ground.solve g

(* Certain disjunction: O,D |= q1(ā1) ∨ … ∨ qn(ān) for *pointed* queries
   (used for the disjunction property, Theorem 17). *)
let certain_disjunction ?(max_extra = 2) o d pointed =
  let rec go k =
    if k > max_extra then true
    else begin
      let sig_q =
        List.fold_left
          (fun s (q, _) -> Logic.Signature.union s (Query.Cq.signature q))
          Logic.Signature.empty pointed
      in
      let g = problem ~extra_signature:sig_q ~extra:k o d in
      List.iter
        (fun (cq, tuple) ->
          Ground.assert_negation ~env:(answer_env cq tuple) g
            (Query.Cq.to_formula cq))
        pointed;
      match Ground.solve g with Some _ -> false | None -> go (k + 1)
    end
  in
  go 0
