(** Bounded model finding and certain answers for arbitrary FO(=,
    counting) ontologies.

    Countermodels are searched over domains dom(D) ∪ {k fresh nulls}.
    Refutations are exact (any countermodel refutes); confirmations are
    "entailed up to the bound". GF and GC2 enjoy the finite model
    property, so iterative deepening converges; experiments record the
    bound they use. *)

(** A model of O and D over dom(D) + [extra] nulls, if any. *)
val find_model :
  ?extra:int -> Logic.Ontology.t -> Structure.Instance.t -> Structure.Instance.t option

(** Consistency of D w.r.t. O, trying 0..[max_extra] extra elements. *)
val is_consistent :
  ?max_extra:int -> Logic.Ontology.t -> Structure.Instance.t -> bool

(** All models over the bounded domain (distinct fact sets). *)
val models :
  ?extra:int ->
  ?limit:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Structure.Instance.t list

(** A countermodel to O,D ⊨ q(ā) with exactly [extra] fresh nulls. *)
val countermodel :
  ?extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Ucq.t ->
  Structure.Element.t list ->
  Structure.Instance.t option

(** O,D ⊨ q(ā): no countermodel with 0..[max_extra] extra elements. *)
val certain_ucq :
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Ucq.t ->
  Structure.Element.t list ->
  bool

val certain_cq :
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Query.Cq.t ->
  Structure.Element.t list ->
  bool

(** Certain truth of an FO(=, counting) formula under an assignment
    [env]: no bounded model of O and D refutes it. *)
val certain_formula :
  ?max_extra:int ->
  ?env:Structure.Element.t Logic.Names.SMap.t ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  Logic.Formula.t ->
  bool

(** A model of O and D over dom(D)+[extra] nulls satisfying exactly the
    flagged pointed queries ((q, ā, wanted) triples). Backs the
    materializability search. *)
val pool_exact_model :
  ?extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  (Query.Cq.t * Structure.Element.t list * bool) list ->
  Structure.Instance.t option

(** O,D ⊨ q1(ā1) ∨ … ∨ qn(ān) for pointed CQs (disjunction property,
    Theorem 17). *)
val certain_disjunction :
  ?max_extra:int ->
  Logic.Ontology.t ->
  Structure.Instance.t ->
  (Query.Cq.t * Structure.Element.t list) list ->
  bool
