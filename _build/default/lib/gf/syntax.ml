module F = Logic.Formula
module SSet = Logic.Names.SSet

exception Not_guarded of string

let fail fmt = Fmt.kstr (fun s -> raise (Not_guarded s)) fmt

type guard =
  | Guard_atom of string * Logic.Term.t list
  | Guard_eq of Logic.Term.t * Logic.Term.t

let guard_vars = function
  | Guard_atom (_, ts) -> Logic.Term.vars ts
  | Guard_eq (s, t) -> Logic.Term.vars [ s; t ]

let guard_of_formula = function
  | F.Atom (r, ts) -> Some (Guard_atom (r, ts))
  | F.Eq (s, t) -> Some (Guard_eq (s, t))
  | _ -> None

let is_eq_guard = function Guard_eq _ -> true | Guard_atom _ -> false

(* Result of analysing an openGF / openGC2 formula. *)
type analysis = {
  depth : int;  (** nesting depth of guarded (incl. counting) quantifiers *)
  eq_nonguard : bool;  (** equality used outside guard positions *)
  counting : bool;  (** counting quantifiers used *)
  vars : SSet.t;  (** all variable names used *)
  max_arity : int;
}

let merge a b =
  {
    depth = max a.depth b.depth;
    eq_nonguard = a.eq_nonguard || b.eq_nonguard;
    counting = a.counting || b.counting;
    vars = SSet.union a.vars b.vars;
    max_arity = max a.max_arity b.max_arity;
  }

let atom_analysis vars arity =
  { depth = 0; eq_nonguard = false; counting = false; vars; max_arity = arity }

(* Check that [g] guards the quantification of [vs] over body [body]:
   every quantified variable and every free variable of the body occurs
   in the guard. *)
let check_guard g vs body =
  let gv = guard_vars g in
  let needed = SSet.union (SSet.of_list vs) (F.free_vars body) in
  if not (SSet.subset needed gv) then
    fail "guard %s does not cover variables {%s}"
      (match g with
      | Guard_atom (r, _) -> r
      | Guard_eq _ -> "=")
      (String.concat "," (SSet.elements (SSet.diff needed gv)))

(* Analyse an openGF/openGC2 formula: every subformula must be open (have
   a free variable), quantifiers must be guarded by atoms (never by
   equality). Raises [Not_guarded] otherwise. *)
let rec analyze_open f =
  if SSet.is_empty (F.free_vars f) then
    fail "subformula %s is a sentence (openGF requires open subformulas)"
      (F.to_string f);
  match f with
  | F.True | F.False -> fail "boolean constant in openGF"
  | F.Atom (_, ts) -> atom_analysis (Logic.Term.vars ts) (List.length ts)
  | F.Eq (s, t) ->
      { (atom_analysis (Logic.Term.vars [ s; t ]) 0) with eq_nonguard = true }
  | F.Not g -> analyze_open g
  | F.And (a, b) | F.Or (a, b) | F.Implies (a, b) ->
      merge (analyze_open a) (analyze_open b)
  | F.Forall (vs, F.Implies (g, body)) -> quantifier vs g body
  | F.Exists (vs, F.And (g, body)) -> quantifier vs g body
  | F.Exists (vs, (F.Atom (_, ts) as g_only)) ->
      (* ∃ȳ α(x̄,ȳ): guard with trivial body. *)
      ignore g_only;
      let a = atom_analysis (Logic.Term.vars ts) (List.length ts) in
      { a with depth = 1; vars = SSet.union a.vars (SSet.of_list vs) }
  | F.Forall _ -> fail "unguarded universal %s" (F.to_string f)
  | F.Exists _ -> fail "unguarded existential %s" (F.to_string f)
  | F.CountGeq (n, v, body) -> counting_quantifier n v body

and quantifier vs g body =
  match guard_of_formula g with
  | None -> fail "quantifier guard %s is not atomic" (F.to_string g)
  | Some (Guard_eq _) -> fail "equality used as a guard inside openGF"
  | Some guard ->
      check_guard guard vs body;
      let ga =
        match guard with
        | Guard_atom (_, ts) ->
            atom_analysis (Logic.Term.vars ts) (List.length ts)
        | Guard_eq _ -> assert false
      in
      let ba = analyze_open body in
      let m = merge ga ba in
      { m with depth = ba.depth + 1; vars = SSet.union m.vars (SSet.of_list vs) }

and counting_quantifier _n v body =
  (* openGC2: ∃≥n z1 (α(z1,z2) ∧ φ(z1,z2)) with α a binary atom. *)
  match body with
  | F.And (g, rest) -> (
      match guard_of_formula g with
      | Some (Guard_atom (r, ts)) when List.length ts = 2 ->
          check_guard (Guard_atom (r, ts)) [ v ] rest;
          let ga = atom_analysis (Logic.Term.vars ts) 2 in
          let ba = analyze_open rest in
          let m = merge ga ba in
          { m with depth = ba.depth + 1; counting = true }
      | _ -> fail "counting quantifier must be guarded by a binary atom")
  | F.Atom (_, ts) when List.length ts = 2 ->
      let ga = atom_analysis (Logic.Term.vars ts) 2 in
      { ga with depth = 1; counting = true; vars = SSet.add v ga.vars }
  | _ -> fail "counting quantifier must be guarded by a binary atom"

let is_open_gf f =
  match analyze_open f with
  | a -> (not a.counting) && not a.eq_nonguard
  | exception Not_guarded _ -> false

(* ------------------------------------------------------------------ *)
(* uGF / uGC2 sentences                                                 *)
(* ------------------------------------------------------------------ *)

type sentence_analysis = {
  outer_eq : bool;  (** the outermost guard is an equality y = y *)
  body : analysis;
}

(* A uGF sentence: ∀ȳ(α(ȳ) → φ(ȳ)) with φ openGF and α an atom or an
   equality y = y covering ȳ. We also accept the conventional shorthand
   ∀y φ for ∀y (y = y → φ). *)
let analyze_sentence f =
  match f with
  | F.Forall (vs, F.Implies (g, body)) -> (
      match guard_of_formula g with
      | None -> fail "outer guard %s is not atomic" (F.to_string g)
      | Some guard ->
          check_guard guard vs body;
          { outer_eq = is_eq_guard guard; body = analyze_open body })
  | F.Forall ([ v ], body)
    when SSet.subset (F.free_vars body) (SSet.singleton v) ->
      (* Shorthand ∀y φ(y), an equality-guarded sentence. *)
      { outer_eq = true; body = analyze_open body }
  | _ -> fail "not of the uGF sentence shape: %s" (F.to_string f)

let is_ugf_sentence f =
  match analyze_sentence f with
  | a -> (not a.body.counting)
  | exception Not_guarded _ -> false

let is_ugc2_sentence f =
  match analyze_sentence f with
  | a ->
      a.body.max_arity <= 2 && SSet.cardinal a.body.vars <= 2
      (* outer guard variables included via check above *)
  | exception Not_guarded _ -> false

(* Depth of a uGF sentence: the depth of its body (the outermost
   quantifier does not count). *)
let sentence_depth f = (analyze_sentence f).body.depth

(* ------------------------------------------------------------------ *)
(* Full GF recognition (guards may be equalities, sentences allowed as  *)
(* subformulas).                                                        *)
(* ------------------------------------------------------------------ *)

let rec is_gf f =
  match f with
  | F.True | F.False | F.Atom _ | F.Eq _ -> true
  | F.Not g -> is_gf g
  | F.And (a, b) | F.Or (a, b) | F.Implies (a, b) -> is_gf a && is_gf b
  | F.Forall (vs, F.Implies (g, body)) -> gf_quantifier vs g body
  | F.Exists (vs, F.And (g, body)) -> gf_quantifier vs g body
  | F.Exists ([ v ], body)
    when SSet.subset (F.free_vars body) (SSet.singleton v) ->
      (* shorthand for the equality-guarded ∃v (v = v ∧ body) *)
      is_gf body
  | F.Exists (vs, g_only) -> (
      match guard_of_formula g_only with
      | Some guard -> SSet.subset (SSet.of_list vs) (guard_vars guard)
      | None -> false)
  | F.Forall ([ v ], body)
    when SSet.subset (F.free_vars body) (SSet.singleton v) ->
      (* shorthand for the equality-guarded ∀v (v = v → body) *)
      is_gf body
  | F.Forall _ -> false
  | F.CountGeq (_, v, F.And (g, body)) -> (
      match guard_of_formula g with
      | Some (Guard_atom (_, ts)) when List.length ts = 2 ->
          SSet.subset
            (SSet.add v (F.free_vars body))
            (Logic.Term.vars ts)
          && is_gf body
      | _ -> false)
  | F.CountGeq (_, _, F.Atom (_, ts)) -> List.length ts = 2
  | F.CountGeq _ -> false

and gf_quantifier vs g body =
  match guard_of_formula g with
  | Some guard ->
      SSet.subset
        (SSet.union (SSet.of_list vs) (F.free_vars body))
        (guard_vars guard)
      && is_gf body
  | None -> false
