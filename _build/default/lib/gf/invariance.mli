(** Empirical testing of invariance under disjoint unions (Theorem 1).
    uGF sentences are invariant; Example 1's Boolean combinations are
    not, and this module finds the witnessing pairs. *)

type counterexample = {
  left : Structure.Instance.t;
  right : Structure.Instance.t;
  holds_left : bool;
  holds_right : bool;
  holds_union : bool;
}

(** Check the binary invariance condition on a concrete pair. *)
val check_pair :
  Logic.Formula.t ->
  Structure.Instance.t ->
  Structure.Instance.t ->
  counterexample option

(** Randomised search for a violation over small interpretations. *)
val find_counterexample :
  ?seed:int ->
  ?samples:int ->
  ?size:int ->
  ?p:float ->
  Logic.Formula.t ->
  counterexample option

val appears_invariant :
  ?seed:int -> ?samples:int -> ?size:int -> ?p:float -> Logic.Formula.t -> bool
