(** Fragment descriptors in the naming scheme of Figure 1:
    uGF{^ −}{_2}(depth, =, f) and uGC{^ −}{_2}(depth, =). *)

type t = {
  counting : bool;
  two_var : bool;
  outer_eq : bool;
  depth : int;
  equality : bool;
  functions : bool;
}

val make :
  ?counting:bool ->
  ?two_var:bool ->
  ?outer_eq:bool ->
  ?equality:bool ->
  ?functions:bool ->
  int ->
  t

(** Render the paper's name, e.g. ["uGF-2(2,f)"]. *)
val name : t -> string

(** [subsumes big small]: every [small]-ontology is a [big]-ontology. *)
val subsumes : t -> t -> bool

(** The minimal descriptor containing the ontology, or [None] when a
    sentence lies outside uGF/uGC2. *)
val of_ontology : Logic.Ontology.t -> t option

val pp : t Fmt.t
