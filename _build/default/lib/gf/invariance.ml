(* Empirical testing of invariance under disjoint unions (Theorem 1):
   a sentence φ is invariant iff for all families of interpretations,
   φ holds in every member iff it holds in their disjoint union. We test
   the binary case on random small interpretations. *)

type counterexample = {
  left : Structure.Instance.t;
  right : Structure.Instance.t;
  holds_left : bool;
  holds_right : bool;
  holds_union : bool;
}

let check_pair sentence a b =
  let holds_left = Structure.Modelcheck.holds a sentence in
  let holds_right = Structure.Modelcheck.holds b sentence in
  let union = Structure.Instance.disjoint_union a b in
  let holds_union = Structure.Modelcheck.holds union sentence in
  if Bool.equal (holds_left && holds_right) holds_union then None
  else Some { left = a; right = b; holds_left; holds_right; holds_union }

(* [find_counterexample ~seed ~samples ~size sentence] searches random
   pairs of interpretations for a violation of disjoint-union invariance.
   [None] means no violation was found (the sentence may still fail on
   larger structures). *)
let find_counterexample ?(seed = 7) ?(samples = 200) ?(size = 3) ?(p = 0.35)
    sentence =
  let signature = Logic.Signature.of_formula sentence in
  let signature =
    if Logic.Names.SMap.is_empty signature then
      Logic.Signature.of_list [ ("U", 1) ]
    else signature
  in
  let rng = Random.State.make [| seed |] in
  let rec go i =
    if i >= samples then None
    else
      let a = Structure.Randgen.instance ~rng ~signature ~size ~p in
      let b = Structure.Randgen.instance ~rng ~signature ~size ~p in
      match check_pair sentence a b with
      | Some cex -> Some cex
      | None -> go (i + 1)
  in
  go 0

let appears_invariant ?seed ?samples ?size ?p sentence =
  Option.is_none (find_counterexample ?seed ?samples ?size ?p sentence)
