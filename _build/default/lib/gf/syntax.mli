(** Syntactic recognition of the guarded fragment and its uGF / uGC2
    sub-languages (Section 2.1).

    A uGF sentence has the shape ∀ȳ(α(ȳ) → φ(ȳ)) with α an atom or an
    equality guard and φ in openGF — the fragment of GF whose subformulas
    are all open and in which equality is never used as a guard. *)

exception Not_guarded of string

type guard =
  | Guard_atom of string * Logic.Term.t list
  | Guard_eq of Logic.Term.t * Logic.Term.t

val guard_vars : guard -> Logic.Names.SSet.t
val guard_of_formula : Logic.Formula.t -> guard option
val is_eq_guard : guard -> bool

type analysis = {
  depth : int;
  eq_nonguard : bool;
  counting : bool;
  vars : Logic.Names.SSet.t;
  max_arity : int;
}

(** Analyse an openGF / openGC2 formula.
    @raise Not_guarded when the formula is outside the fragment. *)
val analyze_open : Logic.Formula.t -> analysis

(** [is_open_gf f]: openGF membership (no counting, no equality). *)
val is_open_gf : Logic.Formula.t -> bool

type sentence_analysis = {
  outer_eq : bool;
  body : analysis;
}

(** Analyse a uGF/uGC2 sentence ∀ȳ(α → φ); accepts the shorthand ∀y φ
    for an equality-guarded sentence.
    @raise Not_guarded outside the fragment. *)
val analyze_sentence : Logic.Formula.t -> sentence_analysis

val is_ugf_sentence : Logic.Formula.t -> bool

(** Two-variable with counting: arity ≤ 2 and at most two variables. *)
val is_ugc2_sentence : Logic.Formula.t -> bool

(** Depth of a uGF sentence = quantifier depth of its body (the outermost
    universal quantifier is not counted). *)
val sentence_depth : Logic.Formula.t -> int

(** Membership in full GF (sentences as subformulas and equality guards
    allowed). *)
val is_gf : Logic.Formula.t -> bool
