module F = Logic.Formula
module SSet = Logic.Names.SSet

(* Structural quantifier depth: counts guarded and counting quantifiers;
   guards are atomic, so descending through them is harmless. *)
let rec qdepth = function
  | F.True | F.False | F.Atom _ | F.Eq _ -> 0
  | F.Not f -> qdepth f
  | F.And (a, b) | F.Or (a, b) | F.Implies (a, b) ->
      max (qdepth a) (qdepth b)
  | F.Forall (_, f) | F.Exists (_, f) | F.CountGeq (_, _, f) -> 1 + qdepth f

let is_quantifier = function
  | F.Forall _ | F.Exists _ | F.CountGeq _ -> true
  | _ -> false

(* Variables of an atomic guard, in order of first occurrence. *)
let guard_var_list g =
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  let push = function
    | Logic.Term.Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.replace seen v ();
          out := v :: !out
        end
    | Logic.Term.Const _ -> ()
  in
  (match g with
  | F.Atom (_, ts) -> List.iter push ts
  | F.Eq (s, t) ->
      push s;
      push t
  | _ -> invalid_arg "guard_var_list: not a guard");
  List.rev !out

(* Replace every top-level quantified subformula rho of [psi] by a fresh
   atom P(fv rho), returning the rewritten formula and the definitional
   sentences ∀ vars(guard) (guard → (P ↔ rho)). *)
let rec abstract_tops guard psi =
  match psi with
  | f when is_quantifier f ->
      let fv = SSet.elements (F.free_vars f) in
      let p = Logic.Names.gensym "Sc" in
      let p_atom = F.Atom (p, List.map (fun v -> Logic.Term.Var v) fv) in
      let def =
        F.Forall
          ( guard_var_list guard,
            F.Implies
              (guard, F.And (F.Implies (p_atom, f), F.Implies (f, p_atom))) )
      in
      (p_atom, [ def ])
  | F.Not f ->
      let f', d = abstract_tops guard f in
      (F.Not f', d)
  | F.And (a, b) ->
      let a', da = abstract_tops guard a in
      let b', db = abstract_tops guard b in
      (F.And (a', b'), da @ db)
  | F.Or (a, b) ->
      let a', da = abstract_tops guard a in
      let b', db = abstract_tops guard b in
      (F.Or (a', b'), da @ db)
  | F.Implies (a, b) ->
      let a', da = abstract_tops guard a in
      let b', db = abstract_tops guard b in
      (F.Implies (a', b'), da @ db)
  | f -> (f, [])

(* Rewrite a body so that its quantifier depth is at most 1, collecting
   definitional sentences (which may themselves have larger depth and are
   reduced recursively by [reduce_ontology]). *)
let rec flatten_body body =
  match body with
  | F.Forall (vs, F.Implies (g, b)) when qdepth b >= 1 ->
      let b', defs = abstract_tops g b in
      (F.Forall (vs, F.Implies (g, b')), defs)
  | F.Exists (vs, F.And (g, b)) when qdepth b >= 1 ->
      let b', defs = abstract_tops g b in
      (F.Exists (vs, F.And (g, b')), defs)
  | F.CountGeq (n, v, F.And (g, b)) when qdepth b >= 1 ->
      let b', defs = abstract_tops g b in
      (F.CountGeq (n, v, F.And (g, b')), defs)
  | F.Not f ->
      let f', d = flatten_body f in
      (F.Not f', d)
  | F.And (a, b) ->
      let a', da = flatten_body a in
      let b', db = flatten_body b in
      (F.And (a', b'), da @ db)
  | F.Or (a, b) ->
      let a', da = flatten_body a in
      let b', db = flatten_body b in
      (F.Or (a', b'), da @ db)
  | F.Implies (a, b) ->
      let a', da = flatten_body a in
      let b', db = flatten_body b in
      (F.Implies (a', b'), da @ db)
  | f -> (f, [])

(* Reduce one uGF/uGC2 sentence ∀ȳ(α → φ) to depth ≤ 1, producing
   residual definitional sentences. *)
let reduce_sentence f =
  match f with
  | F.Forall (vs, F.Implies (g, body)) when qdepth body >= 2 ->
      let body', defs = flatten_body body in
      (F.Forall (vs, F.Implies (g, body')), defs)
  | F.Forall (vs, body) when qdepth body >= 2 && not (is_quantifier body) ->
      let body', defs = flatten_body body in
      (F.Forall (vs, body'), defs)
  | f -> (f, [])

(* Scott-style depth reduction: a conservative extension of the ontology
   in which every sentence has depth ≤ 1 (cf. the remark after Example 2:
   satisfiability and CQ-evaluation for full GF reduce to uGF(1)). *)
let reduce_ontology (o : Logic.Ontology.t) =
  let rec work acc = function
    | [] -> List.rev acc
    | f :: rest ->
        let f', defs = reduce_sentence f in
        if defs = [] && F.equal f f' then work (f :: acc) rest
        else work (f' :: acc) (defs @ rest)
  in
  Logic.Ontology.make
    ~functional:(Logic.Ontology.functional o)
    (work [] (Logic.Ontology.sentences o))
