(** Scott-style depth reduction (the polynomial conservative extension
    into uGF(1) mentioned after Example 2 of the paper).

    Deeply nested guarded subformulas ρ(z̄) occurring under a guard α are
    abstracted by fresh relations P{_ρ} with definitional sentences
    ∀ vars(α) (α → (P{_ρ}(z̄) ↔ ρ(z̄))); iterating yields an ontology all
    of whose sentences have depth ≤ 1. The result is a conservative
    extension: every model of the original expands to a model of the
    result, and reducts of models of the result satisfy the original. *)

(** Structural quantifier depth (guarded and counting quantifiers). *)
val qdepth : Logic.Formula.t -> int

(** Reduce one sentence, returning the rewritten sentence and residual
    definitional sentences (possibly still deep). *)
val reduce_sentence : Logic.Formula.t -> Logic.Formula.t * Logic.Formula.t list

(** Iterate {!reduce_sentence} to a fixpoint: all sentences of the result
    have depth ≤ 1. *)
val reduce_ontology : Logic.Ontology.t -> Logic.Ontology.t
