lib/gf/syntax.mli: Logic
