lib/gf/scott.mli: Logic
