lib/gf/invariance.ml: Bool Logic Option Random Structure
