lib/gf/fragment.mli: Fmt Logic
