lib/gf/syntax.ml: Fmt List Logic String
