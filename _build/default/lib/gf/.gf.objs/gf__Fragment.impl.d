lib/gf/fragment.ml: Fmt List Logic Printf String Syntax
