lib/gf/invariance.mli: Logic Structure
