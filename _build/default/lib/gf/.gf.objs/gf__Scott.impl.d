lib/gf/scott.ml: Hashtbl List Logic
