module SSet = Logic.Names.SSet

(* A fragment descriptor in the naming scheme of Figure 1:
   uGF[−][2](depth[, =][, f]) and uGC[−]2(depth[, =]). *)
type t = {
  counting : bool;  (** uGC2 rather than uGF *)
  two_var : bool;  (** subscript ·2 *)
  outer_eq : bool;  (** superscript ·− : outer guards are equalities *)
  depth : int;
  equality : bool;  (** (=): equality in non-guard positions *)
  functions : bool;  (** (f): partial function declarations *)
}

let make ?(counting = false) ?(two_var = false) ?(outer_eq = false)
    ?(equality = false) ?(functions = false) depth =
  { counting; two_var; outer_eq; depth; equality; functions }

let name t =
  let base = if t.counting then "uGC" else "uGF" in
  let minus = if t.outer_eq then "-" else "" in
  let two = if t.two_var || t.counting then "2" else "" in
  let feats =
    [ string_of_int t.depth ]
    @ (if t.equality then [ "=" ] else [])
    @ if t.functions then [ "f" ] else []
  in
  Printf.sprintf "%s%s%s(%s)" base minus two (String.concat "," feats)

(* [subsumes big small]: every [small]-ontology is a [big]-ontology. *)
let subsumes big small =
  (big.counting || not small.counting)
  && ((not big.two_var) || small.two_var)
  && ((not big.outer_eq) || small.outer_eq)
  && big.depth >= small.depth
  && (big.equality || not small.equality)
  && (big.functions || not small.functions)

(* The minimal descriptor of an ontology, or [None] when a sentence is
   outside uGF/uGC2. *)
let of_ontology (o : Logic.Ontology.t) =
  let sig_ = Logic.Signature.of_formulas (Logic.Ontology.sentences o) in
  let max_arity = Logic.Signature.max_arity sig_ in
  try
    let analyses = List.map Syntax.analyze_sentence (Logic.Ontology.sentences o) in
    let fold (acc : t) (a : Syntax.sentence_analysis) =
      {
        acc with
        counting = acc.counting || a.body.counting;
        outer_eq = acc.outer_eq && a.outer_eq;
        depth = max acc.depth a.body.depth;
        equality = acc.equality || a.body.eq_nonguard;
        two_var =
          acc.two_var && SSet.cardinal a.body.vars <= 2 && max_arity <= 2;
      }
    in
    let init =
      {
        counting = false;
        two_var = true;
        outer_eq = true;
        depth = 0;
        equality = false;
        functions = Logic.Ontology.functional o <> [];
      }
    in
    let d = List.fold_left fold init analyses in
    (* Functions and counting require the two-variable fragment. *)
    if (d.functions || d.counting) && not d.two_var then None else Some d
  with Syntax.Not_guarded _ -> None

let pp ppf t = Fmt.string ppf (name t)
