(** First-order formulas over a relational signature, with equality and
    counting quantifiers [CountGeq (n, x, phi)] standing for
    {m \exists^{\geq n} x\, \varphi}.

    This is the common AST for the guarded fragment (GF), its uGF/uGC2
    fragments, and the first-order translations of description logic
    ontologies. Guardedness is not baked into the type; it is recognised
    structurally by {!Gf.Syntax}. *)

type t =
  | True
  | False
  | Atom of string * Term.t list
  | Eq of Term.t * Term.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Forall of string list * t
  | Exists of string list * t
  | CountGeq of int * string * t

(** {1 Smart constructors}

    The binary constructors simplify trivial cases ([True], [False]). *)

val tru : t
val fls : t
val atom : string -> Term.t list -> t
val eq : Term.t -> Term.t -> t
val neg : t -> t
val conj2 : t -> t -> t
val disj2 : t -> t -> t

(** [conj fs] is the conjunction of [fs] ([True] when empty). *)
val conj : t list -> t

(** [disj fs] is the disjunction of [fs] ([False] when empty). *)
val disj : t list -> t

val implies : t -> t -> t
val forall : string list -> t -> t
val exists : string list -> t -> t
val count_geq : int -> string -> t -> t

(** {1 Traversals} *)

val free_vars : t -> Names.SSet.t
val all_vars : t -> Names.SSet.t

(** [is_sentence f] holds iff [f] has no free variables. *)
val is_sentence : t -> bool

(** [size f] is the number of connective/atom nodes of [f]. *)
val size : t -> int

(** [relations f] maps every relation symbol occurring in [f] to its
    arity. *)
val relations : t -> int Names.SMap.t

(** [uses_equality f] holds iff [f] contains an equality atom. *)
val uses_equality : t -> bool

(** [uses_counting f] holds iff [f] contains a counting quantifier. *)
val uses_counting : t -> bool

(** All subformulas of [f], including [f] itself (with duplicates). *)
val subformulas : t -> t list

(** [nnf f] pushes negations to the atoms and eliminates [Implies].
    Counting quantifiers are kept under single negations. *)
val nnf : t -> t

val pp : t Fmt.t
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
