(** String-keyed collections shared across the code base. *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(** [fresh ~avoid base] returns a name based on [base] that does not occur
    in [avoid]. *)
let fresh ~avoid base =
  if not (SSet.mem base avoid) then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s_%d" base i in
      if SSet.mem candidate avoid then go (i + 1) else candidate
    in
    go 0

(** A stateful generator of globally fresh names with a given prefix. *)
let counter = ref 0

let gensym prefix =
  incr counter;
  Printf.sprintf "%s#%d" prefix !counter
