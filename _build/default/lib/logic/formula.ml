module SSet = Names.SSet
module SMap = Names.SMap

type t =
  | True
  | False
  | Atom of string * Term.t list
  | Eq of Term.t * Term.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Forall of string list * t
  | Exists of string list * t
  | CountGeq of int * string * t

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                   *)
(* ------------------------------------------------------------------ *)

let tru = True
let fls = False
let atom r ts = Atom (r, ts)
let eq s t = Eq (s, t)

let neg = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let conj2 a b =
  match (a, b) with
  | True, f | f, True -> f
  | False, _ | _, False -> False
  | _ -> And (a, b)

let disj2 a b =
  match (a, b) with
  | False, f | f, False -> f
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let conj fs = List.fold_left conj2 True fs
let disj fs = List.fold_left disj2 False fs

let implies a b =
  match (a, b) with
  | True, f -> f
  | False, _ -> True
  | _, True -> True
  | _ -> Implies (a, b)

(* Domains are non-empty, so quantifying a constant formula is the
   constant itself. *)
let forall vs f =
  match f with
  | True | False -> f
  | _ -> if vs = [] then f else Forall (vs, f)

let exists vs f =
  match f with
  | True | False -> f
  | _ -> if vs = [] then f else Exists (vs, f)

let count_geq n v f =
  match f with
  | False -> False
  | _ -> if n <= 0 then True else CountGeq (n, v, f)

(* ------------------------------------------------------------------ *)
(* Traversals                                                           *)
(* ------------------------------------------------------------------ *)

let rec free_vars = function
  | True | False -> SSet.empty
  | Atom (_, ts) -> Term.vars ts
  | Eq (s, t) -> Term.vars [ s; t ]
  | Not f -> free_vars f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      SSet.union (free_vars a) (free_vars b)
  | Forall (vs, f) | Exists (vs, f) ->
      SSet.diff (free_vars f) (SSet.of_list vs)
  | CountGeq (_, v, f) -> SSet.remove v (free_vars f)

let is_sentence f = SSet.is_empty (free_vars f)

let rec all_vars = function
  | True | False -> SSet.empty
  | Atom (_, ts) -> Term.vars ts
  | Eq (s, t) -> Term.vars [ s; t ]
  | Not f -> all_vars f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      SSet.union (all_vars a) (all_vars b)
  | Forall (vs, f) | Exists (vs, f) ->
      SSet.union (SSet.of_list vs) (all_vars f)
  | CountGeq (_, v, f) -> SSet.add v (all_vars f)

let rec size = function
  | True | False -> 1
  | Atom _ | Eq _ -> 1
  | Not f -> 1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) -> 1 + size a + size b
  | Forall (_, f) | Exists (_, f) | CountGeq (_, _, f) -> 1 + size f

let rec relations = function
  | True | False | Eq _ -> SMap.empty
  | Atom (r, ts) -> SMap.singleton r (List.length ts)
  | Not f -> relations f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      SMap.union (fun _ x _ -> Some x) (relations a) (relations b)
  | Forall (_, f) | Exists (_, f) | CountGeq (_, _, f) -> relations f

let rec uses_equality = function
  | True | False | Atom _ -> false
  | Eq _ -> true
  | Not f -> uses_equality f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      uses_equality a || uses_equality b
  | Forall (_, f) | Exists (_, f) | CountGeq (_, _, f) -> uses_equality f

let rec uses_counting = function
  | True | False | Atom _ | Eq _ -> false
  | Not f -> uses_counting f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      uses_counting a || uses_counting b
  | Forall (_, f) | Exists (_, f) -> uses_counting f
  | CountGeq _ -> true

let rec subformulas f =
  f
  ::
  (match f with
  | True | False | Atom _ | Eq _ -> []
  | Not g | Forall (_, g) | Exists (_, g) | CountGeq (_, _, g) ->
      subformulas g
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      subformulas a @ subformulas b)

(* ------------------------------------------------------------------ *)
(* Negation normal form                                                 *)
(* ------------------------------------------------------------------ *)

let rec nnf f =
  match f with
  | True | False | Atom _ | Eq _ -> f
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Implies (a, b) -> Or (nnf (Not a), nnf b)
  | Forall (vs, g) -> Forall (vs, nnf g)
  | Exists (vs, g) -> Exists (vs, nnf g)
  | CountGeq (n, v, g) -> CountGeq (n, v, nnf g)
  | Not g -> (
      match g with
      | True -> False
      | False -> True
      | Atom _ | Eq _ -> Not g
      | Not h -> nnf h
      | And (a, b) -> Or (nnf (Not a), nnf (Not b))
      | Or (a, b) -> And (nnf (Not a), nnf (Not b))
      | Implies (a, b) -> And (nnf a, nnf (Not b))
      | Forall (vs, h) -> Exists (vs, nnf (Not h))
      | Exists (vs, h) -> Forall (vs, nnf (Not h))
      | CountGeq (n, v, h) -> Not (CountGeq (n, v, nnf h)))

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                      *)
(* ------------------------------------------------------------------ *)

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom (r, ts) -> Fmt.pf ppf "%s(%a)" r Fmt.(list ~sep:comma Term.pp) ts
  | Eq (s, t) -> Fmt.pf ppf "%a = %a" Term.pp s Term.pp t
  | Not f -> Fmt.pf ppf "~%a" pp_paren f
  | And (a, b) -> Fmt.pf ppf "%a /\\ %a" pp_paren a pp_paren b
  | Or (a, b) -> Fmt.pf ppf "%a \\/ %a" pp_paren a pp_paren b
  | Implies (a, b) -> Fmt.pf ppf "%a -> %a" pp_paren a pp_paren b
  | Forall (vs, f) ->
      Fmt.pf ppf "forall %a. %a" Fmt.(list ~sep:sp string) vs pp_paren f
  | Exists (vs, f) ->
      Fmt.pf ppf "exists %a. %a" Fmt.(list ~sep:sp string) vs pp_paren f
  | CountGeq (n, v, f) -> Fmt.pf ppf "exists>=%d %s. %a" n v pp_paren f

and pp_paren ppf f =
  match f with
  | True | False | Atom _ | Eq _ | Not _ -> pp ppf f
  | _ -> Fmt.pf ppf "(%a)" pp f

let to_string f = Fmt.str "%a" pp f
let compare = Stdlib.compare
let equal a b = compare a b = 0
