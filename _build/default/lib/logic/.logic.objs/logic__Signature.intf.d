lib/logic/signature.mli: Fmt Formula Names
