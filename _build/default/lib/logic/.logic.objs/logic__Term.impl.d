lib/logic/term.ml: Fmt List Names Stdlib
