lib/logic/subst.ml: Formula List Names Term
