lib/logic/ontology.mli: Fmt Formula Signature
