lib/logic/signature.ml: Fmt Formula List Names
