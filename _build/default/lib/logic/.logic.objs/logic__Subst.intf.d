lib/logic/subst.mli: Formula Names Term
