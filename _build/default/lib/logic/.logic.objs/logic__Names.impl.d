lib/logic/names.ml: Map Printf Set String
