lib/logic/ontology.ml: Fmt Formula List Signature String Term
