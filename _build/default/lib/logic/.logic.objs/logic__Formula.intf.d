lib/logic/formula.mli: Fmt Names Term
