lib/logic/formula.ml: Fmt List Names Stdlib Term
