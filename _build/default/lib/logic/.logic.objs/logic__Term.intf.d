lib/logic/term.mli: Fmt Names
