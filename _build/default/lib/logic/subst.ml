module SSet = Names.SSet
module SMap = Names.SMap

type t = Term.t SMap.t

let empty = SMap.empty
let of_list l = SMap.of_seq (List.to_seq l)
let singleton v t = SMap.singleton v t
let add v t s = SMap.add v t s
let find_opt v s = SMap.find_opt v s

let apply_term s = function
  | Term.Var v as t -> ( match SMap.find_opt v s with Some u -> u | None -> t)
  | Term.Const _ as t -> t

(* Variables that may be captured when substituting under a binder. *)
let range_vars s =
  SMap.fold
    (fun _ t acc ->
      match t with Term.Var v -> SSet.add v acc | Term.Const _ -> acc)
    s SSet.empty

let rec apply s f =
  let open Formula in
  if SMap.is_empty s then f
  else
    match f with
    | True | False -> f
    | Atom (r, ts) -> Atom (r, List.map (apply_term s) ts)
    | Eq (a, b) -> Eq (apply_term s a, apply_term s b)
    | Not g -> Not (apply s g)
    | And (a, b) -> And (apply s a, apply s b)
    | Or (a, b) -> Or (apply s a, apply s b)
    | Implies (a, b) -> Implies (apply s a, apply s b)
    | Forall (vs, g) ->
        let vs', g' = binder s vs g in
        Forall (vs', g')
    | Exists (vs, g) ->
        let vs', g' = binder s vs g in
        Exists (vs', g')
    | CountGeq (n, v, g) -> (
        match binder s [ v ] g with
        | [ v' ], g' -> CountGeq (n, v', g')
        | _ -> assert false)

(* Substitute under a binder [vs . g]: drop bindings for the bound
   variables and rename bound variables that would capture a variable in
   the range of the substitution. *)
and binder s vs g =
  let s = List.fold_left (fun s v -> SMap.remove v s) s vs in
  let captured = range_vars s in
  let avoid =
    SSet.union captured (SSet.union (Formula.all_vars g) (SSet.of_list vs))
  in
  let rename (avoid, ren, vs') v =
    if SSet.mem v captured then
      let v' = Names.fresh ~avoid v in
      (SSet.add v' avoid, SMap.add v (Term.Var v') ren, v' :: vs')
    else (avoid, ren, v :: vs')
  in
  let _, ren, rev_vs = List.fold_left rename (avoid, SMap.empty, []) vs in
  let g = if SMap.is_empty ren then g else apply ren g in
  (List.rev rev_vs, apply s g)

let rename_var ~from ~into f = apply (singleton from (Term.Var into)) f
