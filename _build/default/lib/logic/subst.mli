(** Capture-avoiding substitution of terms for free variables. *)

type t = Term.t Names.SMap.t

val empty : t
val of_list : (string * Term.t) list -> t
val singleton : string -> Term.t -> t
val add : string -> Term.t -> t -> t
val find_opt : string -> t -> Term.t option

(** [apply_term s t] replaces [t] if it is a variable bound by [s]. *)
val apply_term : t -> Term.t -> Term.t

(** [apply s f] substitutes in [f], renaming bound variables as needed to
    avoid capture. *)
val apply : t -> Formula.t -> Formula.t

(** [rename_var ~from ~into f] renames free occurrences of [from]. *)
val rename_var : from:string -> into:string -> Formula.t -> Formula.t
