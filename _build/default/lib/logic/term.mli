(** First-order terms: variables and (named) data constants.

    Labelled nulls never occur inside formulas; they live only in
    interpretations (see {!Structure.Element}). *)

type t =
  | Var of string
  | Const of string

val compare : t -> t -> int
val equal : t -> t -> bool

(** [is_var t] holds iff [t] is a variable. *)
val is_var : t -> bool

(** [var_name t] is [Some v] when [t = Var v]. *)
val var_name : t -> string option

val pp : t Fmt.t
val to_string : t -> string

(** [vars ts] is the set of variable names occurring in [ts]. *)
val vars : t list -> Names.SSet.t
