(** Ontologies: finite sets of FO sentences, plus optional declarations
    that some binary relations are partial functions (the (f) feature of
    uGF2(f), Section 2.1). *)

type t = {
  sentences : Formula.t list;
  functional : string list;
}

val make : ?functional:string list -> Formula.t list -> t
val sentences : t -> Formula.t list
val functional : t -> string list

(** The FO axiom ∀x y1 y2 (R(x,y1) ∧ R(x,y2) → y1 = y2). *)
val functionality_axiom : string -> Formula.t

(** Sentences with functionality declarations expanded to FO axioms. *)
val all_sentences : t -> Formula.t list

val signature : t -> Signature.t
val union : t -> t -> t

(** |O|: total symbol count. *)
val size : t -> int

val pp : t Fmt.t
