type t = {
  sentences : Formula.t list;
  functional : string list;
}

let make ?(functional = []) sentences = { sentences; functional }
let sentences t = t.sentences
let functional t = t.functional

let functionality_axiom r =
  let x = Term.Var "x" and y1 = Term.Var "y1" and y2 = Term.Var "y2" in
  Formula.Forall
    ( [ "x"; "y1"; "y2" ],
      Formula.Implies
        ( Formula.And (Formula.Atom (r, [ x; y1 ]), Formula.Atom (r, [ x; y2 ])),
          Formula.Eq (y1, y2) ) )

(* All sentences including the expanded functionality axioms. *)
let all_sentences t =
  t.sentences @ List.map functionality_axiom t.functional

let signature t = Signature.of_formulas (all_sentences t)

let union a b =
  {
    sentences = a.sentences @ b.sentences;
    functional = List.sort_uniq String.compare (a.functional @ b.functional);
  }

(* Size |O|: number of symbols, counting names and numbers as one. *)
let size t =
  List.fold_left (fun n f -> n + Formula.size f) 0 (all_sentences t)

let pp ppf t =
  Fmt.pf ppf "@[<v>%a%a@]"
    Fmt.(list ~sep:cut Formula.pp)
    t.sentences
    Fmt.(list ~sep:cut (fun ppf r -> Fmt.pf ppf "func(%s)" r))
    t.functional
