type t =
  | Var of string
  | Const of string

let compare = Stdlib.compare
let equal a b = compare a b = 0

let is_var = function Var _ -> true | Const _ -> false

let var_name = function
  | Var v -> Some v
  | Const _ -> None

let pp ppf = function
  | Var v -> Fmt.string ppf v
  | Const c -> Fmt.pf ppf "'%s'" c

let to_string t = Fmt.str "%a" pp t

let vars ts =
  List.fold_left
    (fun acc t -> match t with Var v -> Names.SSet.add v acc | Const _ -> acc)
    Names.SSet.empty ts
