(** Unions of conjunctive queries: non-empty lists of CQs of equal
    arity, evaluated disjunctively. *)

type t = {
  name : string;
  disjuncts : Cq.t list;
}

exception Ill_formed of string

(** @raise Ill_formed on an empty list or mismatched arities. *)
val make : ?name:string -> Cq.t list -> t

val of_cq : Cq.t -> t
val disjuncts : t -> Cq.t list
val arity : t -> int
val is_boolean : t -> bool
val signature : t -> Logic.Signature.t

(** [holds inst t ā]: some disjunct answers ā in [inst]. *)
val holds : Structure.Instance.t -> t -> Structure.Element.t list -> bool

val answers : Structure.Instance.t -> t -> Structure.Element.t list list
val pp : t Fmt.t
val to_string : t -> string
