type t = {
  name : string;
  disjuncts : Cq.t list;
}

exception Ill_formed of string

let make ?(name = "Q") disjuncts =
  (match disjuncts with
  | [] -> raise (Ill_formed "a UCQ needs at least one disjunct")
  | q :: rest ->
      let a = Cq.arity q in
      if List.exists (fun q' -> Cq.arity q' <> a) rest then
        raise (Ill_formed "all disjuncts of a UCQ must share the arity"));
  { name; disjuncts }

let of_cq q = make ~name:q.Cq.name [ q ]
let disjuncts t = t.disjuncts
let arity t = match t.disjuncts with q :: _ -> Cq.arity q | [] -> 0
let is_boolean t = arity t = 0

let signature t =
  List.fold_left
    (fun s q -> Logic.Signature.union s (Cq.signature q))
    Logic.Signature.empty t.disjuncts

let holds inst t tuple = List.exists (fun q -> Cq.holds inst q tuple) t.disjuncts

let answers inst t =
  List.concat_map (Cq.answers inst) t.disjuncts
  |> List.sort_uniq (List.compare Structure.Element.compare)

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:(any " |@ ") Cq.pp)
    t.disjuncts

let to_string t = Fmt.str "%a" pp t
