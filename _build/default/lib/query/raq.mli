(** Builders for rooted acyclic queries and common query shapes. *)

val var_of_element : Structure.Element.t -> string

(** View an instance as a CQ over its elements with the given answer
    elements; [None] if the result is not an rAQ. *)
val of_instance :
  ?name:string ->
  Structure.Instance.t ->
  answer:Structure.Element.t list ->
  Cq.t option

(** q(x̄) ← R(x̄). *)
val atom_query : ?name:string -> string -> int -> Cq.t

(** q(x) ← A(x). *)
val unary : ?name:string -> string -> Cq.t

(** q(x0) ← R(x0,x1), …, R(x{_n-1},x{_n})[, A(x{_n})]. *)
val path_query : ?name:string -> string -> int -> ending:string option -> Cq.t
