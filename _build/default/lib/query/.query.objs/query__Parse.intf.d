lib/query/parse.mli: Cq Ucq
