lib/query/raq.ml: Cq List Logic Printf Structure
