lib/query/ucq.mli: Cq Fmt Logic Structure
