lib/query/parse.ml: Cq Fmt List Logic String Ucq
