lib/query/ucq.ml: Cq Fmt List Logic Structure
