lib/query/cq.mli: Fmt Logic Structure
