lib/query/raq.mli: Cq Structure
