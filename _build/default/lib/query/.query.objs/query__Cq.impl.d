lib/query/cq.ml: Fmt Hashtbl List Logic Printf Stdlib Structure
