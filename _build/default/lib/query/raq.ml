(* Helpers for building rooted acyclic queries (rAQs) and other common
   query shapes used throughout the experiments. *)

module ESet = Structure.Element.Set

let var_of_element e =
  match e with
  | Structure.Element.Const c -> "v_" ^ c
  | Structure.Element.Null n -> Printf.sprintf "v_n%d" n

(* View an instance as a CQ whose variables are its elements, with the
   given answer elements. Returns [None] when the result would not be an
   rAQ. *)
let of_instance ?(name = "q") inst ~answer =
  let atoms =
    List.map
      (fun (f : Structure.Instance.fact) ->
        (f.rel, List.map (fun e -> Logic.Term.Var (var_of_element e)) f.args))
      (Structure.Instance.facts inst)
  in
  let q = Cq.make ~name ~answer:(List.map var_of_element answer) atoms in
  if Cq.is_raq q then Some q else None

(* q(x1,…,xk) ← R(x1,…,xk): always an rAQ. *)
let atom_query ?(name = "q") rel arity =
  let vars = List.init arity (fun i -> Printf.sprintf "x%d" i) in
  Cq.make ~name ~answer:vars [ (rel, List.map (fun v -> Logic.Term.Var v) vars) ]

(* q(x) ← A(x). *)
let unary ?(name = "q") rel = atom_query ~name rel 1

(* q(x) ← R(x,y1), …, chained path of length n ending in A if given. *)
let path_query ?(name = "q") rel n ~ending =
  let var i = Printf.sprintf "x%d" i in
  let edge i = (rel, [ Logic.Term.Var (var i); Logic.Term.Var (var (i + 1)) ]) in
  let atoms = List.init n edge in
  let atoms =
    match ending with
    | Some a -> atoms @ [ (a, [ Logic.Term.Var (var n) ]) ]
    | None -> atoms
  in
  Cq.make ~name ~answer:[ var 0 ] atoms
