(** Text format for conjunctive queries: [q(x) <- R(x,y), A(y)];
    disjuncts of a UCQ are separated by ['|']. Lower-case arguments are
    variables, capitalised or ['...']-quoted ones constants. *)

exception Parse_error of string

val cq_of_string : string -> Cq.t
val ucq_of_string : string -> Ucq.t
