(* The command-line front end:

     omq_tool classify ONTOLOGY.dl [--json]
     omq_tool eval ONTOLOGY.dl DATA.txt 'q(x) <- Thumb(x)' [--json] [--stats]
     omq_tool fig1 [--json]
     omq_tool corpus --seed 2017 -n 411
     omq_tool decide ONTOLOGY.dl [--json]
     omq_tool serve --socket omq.sock --jobs 4
     omq_tool request --socket omq.sock '{"v":2,"op":"stats"}'
     omq_tool request --socket omq.sock \
       '{"v":2,"op":"retract_facts","session":0,"facts":"Thumb(t)"}'

   Every command takes the same resource/observability flag spec
   ([common] below); --json output of classify/eval/decide renders
   through Omq.Protocol, so a one-shot CLI answer is byte-compatible
   with the serve daemon's response for the same work (the daemon adds
   only the echoed request id). *)

open Cmdliner
module P = Omq.Protocol

(* ------------------------------------------------------------------ *)
(* Input loading: every parser in the tool reports errors the same way,
   as [Error "file:line: message"], and every command funnels through
   [run_result]. *)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error m -> Error m

let ( let* ) = Result.bind

let load_tbox path =
  let* text = read_file path in
  try Ok (Dl.Parser.parse_tbox text) with
  | Dl.Parser.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" path line message)
  | Dl.Lexer.Lex_error { line; col; message } ->
      Error (Printf.sprintf "%s:%d:%d: %s" path line col message)

let load_instance path =
  let* text = read_file path in
  try Ok (Structure.Parse.instance_of_string text) with
  | Structure.Parse.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" path line message)

let load_query text =
  try Ok (Query.Parse.ucq_of_string text)
  with Query.Parse.Parse_error m -> Error (Printf.sprintf "query: %s" m)

let run_result f =
  match f () with
  | Ok code -> code
  | Error m ->
      Fmt.epr "omq_tool: %s@." m;
      1

(* ------------------------------------------------------------------ *)
(* Hand-rolled JSON for the commands with bespoke shapes (fig1, corpus);
   classify/eval/decide render through Omq.Protocol instead. *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* [fields] are already-rendered JSON values. *)
let json_obj fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> json_string k ^ ": " ^ v) fields)
  ^ "}"

let json_list items = "[" ^ String.concat ", " items ^ "]"
let json_bool b = if b then "true" else "false"

let status_name (s : Classify.Landscape.status) =
  Fmt.str "%a" Classify.Landscape.pp_status s

let element_name e = Fmt.str "%a" Structure.Element.pp e

(* ------------------------------------------------------------------ *)
(* Exit codes. A tripped budget is not an error — the tool prints a
   partial result and exits with a distinct code. Cmdliner's default
   cli_error is also 124, so command-line misuse is remapped to the
   conventional 2 to keep 124 = timed out unambiguous. The table below
   is advertised in every command's man page. *)

let exit_timeout = 124
let exit_fuel = 125
let exit_cli_misuse = 2
let exit_internal = 70

let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1
      ~doc:"on an input or runtime error (unreadable file, parse error).";
    Cmd.Exit.info exit_cli_misuse ~doc:"on command-line misuse.";
    Cmd.Exit.info exit_internal
      ~doc:"on an internal error (uncaught exception).";
    Cmd.Exit.info exit_timeout
      ~doc:
        "when the $(b,--timeout) budget tripped; the partial result \
         computed so far was reported first.";
    Cmd.Exit.info exit_fuel
      ~doc:
        "when the $(b,--fuel) or $(b,--max-clauses) budget tripped; the \
         partial result computed so far was reported first.";
  ]

let reason_code = function
  | Reasoner.Budget.Timeout -> exit_timeout
  | Reasoner.Budget.Fuel -> exit_fuel

let reason_name = P.reason_name

(* ------------------------------------------------------------------ *)
(* The shared flag spec: every command accepts the same resource-budget
   and observability flags (serve reuses the budget flags as its
   per-request admission caps). *)

type common = {
  json : bool;
  timeout : float option;
  fuel : int option;
  max_clauses : int option;
  trace : string option;
  trace_format : Obs.Export.format;
  profile : bool;
}

let common_term =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit a machine-readable JSON object on stdout. For \
             $(b,classify), $(b,eval) and $(b,decide) this is an \
             Omq.Protocol response frame, byte-compatible with the serve \
             daemon's.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Wall-clock deadline in seconds. On expiry the tool reports \
             the partial result computed so far and exits with code 124. \
             Under $(b,serve): per-request admission cap.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "Solver fuel: total propagations + conflicts allowed. On \
             exhaustion the tool reports the partial result computed so \
             far and exits with code 125. Under $(b,serve): per-request \
             admission cap.")
  in
  let clauses_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-clauses" ] ~docv:"N"
          ~doc:
            "Cap on emitted ground clauses; a tripped run reports \
             out_of_fuel and exits with code 125. Under $(b,serve): \
             per-request admission cap.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a trace of the run and write it to $(docv). The \
             default format loads into chrome://tracing or \
             ui.perfetto.dev; see $(b,--trace-format).")
  in
  let trace_format_arg =
    Arg.(
      value
      & opt
          (enum [ ("chrome", Obs.Export.Chrome); ("jsonl", Obs.Export.Jsonl) ])
          Obs.Export.Chrome
      & info [ "trace-format" ] ~docv:"FMT"
          ~doc:
            "Trace file format: $(b,chrome) (trace-event JSON) or \
             $(b,jsonl).")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print a per-phase profile (span name, count, self and total \
             seconds) on stderr after the command.")
  in
  let make json timeout fuel max_clauses trace trace_format profile =
    { json; timeout; fuel; max_clauses; trace; trace_format; profile }
  in
  Term.(
    const make $ json_arg $ timeout_arg $ fuel_arg $ clauses_arg $ trace_arg
    $ trace_format_arg $ profile_arg)

let budget_of (c : common) =
  match (c.timeout, c.fuel, c.max_clauses) with
  | None, None, None -> Reasoner.Budget.unlimited
  | timeout, fuel, max_clauses ->
      Reasoner.Budget.create ?timeout ?fuel ?max_clauses ()

(* --trace FILE installs an Obs collector for the duration of the
   command and exports it in the requested format; --profile prints a
   per-phase self/total table (to stderr, so --json stays clean on
   stdout). Both work together and compose with budget trips: a tripped
   run exports a closed trace whose root span carries the reason. *)
let with_tracing (c : common) f =
  if c.trace = None && not c.profile then f ()
  else begin
    let r, col = Obs.Trace.collect f in
    if c.profile then
      Fmt.epr "%a@." Obs.Export.pp_profile (Obs.Export.profile col);
    match Option.iter (fun path -> Obs.Export.to_file c.trace_format col path) c.trace with
    | () -> r
    | exception Sys_error m -> Error m
  end

(* Stats cross into protocol frames as the Stats.to_json object,
   re-parsed so the rendering is the daemon's. *)
let stats_json st =
  match P.Json.parse (Reasoner.Stats.to_json st) with
  | Ok j -> j
  | Error _ -> P.Json.Null

let print_response resp = Fmt.pr "%s@." (P.render_response resp)

(* ------------------------------------------------------------------ *)

let ontology_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"ONTOLOGY" ~doc:"DL ontology file (one axiom per line).")

let classify_cmd =
  let run path (c : common) =
    run_result @@ fun () ->
    with_tracing c @@ fun () ->
    let* tbox = load_tbox path in
    let o = Dl.Translate.tbox tbox in
    let fragment = Gf.Fragment.of_ontology o in
    let ev = Classify.Landscape.of_tbox tbox in
    if c.json then
      print_response
        (P.Classified
           {
             dl_name = Dl.Tbox.name tbox;
             depth = Dl.Tbox.depth tbox;
             fragment = Option.map Gf.Fragment.name fragment;
             status = status_name ev.Classify.Landscape.status;
             evidence_fragment = ev.Classify.Landscape.fragment;
             source = ev.Classify.Landscape.source;
           })
    else begin
      Fmt.pr "DL name:   %s (depth %d)@." (Dl.Tbox.name tbox)
        (Dl.Tbox.depth tbox);
      (match fragment with
      | Some d -> Fmt.pr "fragment:  %s@." (Gf.Fragment.name d)
      | None -> Fmt.pr "fragment:  outside uGF/uGC2@.");
      Fmt.pr "status:    %a@." Classify.Landscape.pp_evidence ev
    end;
    Ok 0
  in
  Cmd.v
    (Cmd.info "classify" ~exits
       ~doc:"Locate an ontology in the Figure 1 landscape.")
    Term.(const run $ ontology_arg $ common_term)

let eval_cmd =
  let data_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"DATA" ~doc:"Instance file (one fact per line).")
  in
  let query_arg =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"QUERY" ~doc:"UCQ, e.g. 'q(x) <- Thumb(x)'.")
  in
  let bound_arg =
    Arg.(
      value & opt int 2 & info [ "max-extra" ] ~doc:"Countermodel domain bound.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Report engine counters (groundings, solves, cache traffic).")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Before evaluating, print the planner's chosen join order and \
             index access methods over the input instance as one JSON line \
             (one plan per disjunct of the UCQ).")
  in
  let run path data query max_extra stats explain (c : common) =
    run_result @@ fun () ->
    with_tracing c @@ fun () ->
    let* tbox = load_tbox path in
    let* d = load_instance data in
    let* q = load_query query in
    if explain then
      Fmt.pr "{\"plans\":[%s]}@."
        (String.concat ","
           (List.map (Query.Cq.explain d) (Query.Ucq.disjuncts q)));
    let omq = Omq.of_tbox tbox q in
    Reasoner.Stats.reset (Reasoner.Stats.global ());
    let budget = budget_of c in
    let session = Omq.open_session ~max_extra omq d in
    let global = Reasoner.Stats.global () in
    let boolean = Query.Ucq.is_boolean q in
    let names = List.map (List.map element_name) in
    let proto_stats () = if stats then Some (stats_json global) else None in
    (* A tripped budget: report what was certified before exhaustion and
       where to resume, then exit with the reason's code. *)
    let partial reason (p : Omq.Session.partial_answers) =
      let next =
        match p.Omq.Session.undecided () with
        | Seq.Nil -> None
        | Seq.Cons (t, _) -> Some t
      in
      if c.json then
        print_response
          (P.Partial
             {
               reason;
               certified = names p.Omq.Session.certified;
               resume_from = Option.map (List.map element_name) next;
               stats = proto_stats ();
             })
      else begin
        Fmt.pr "%a: partial result@." Reasoner.Budget.pp_reason reason;
        Fmt.pr "%d tuple(s) certified before exhaustion@."
          (List.length p.Omq.Session.certified);
        List.iter
          (fun t ->
            Fmt.pr "  (%a)@." Fmt.(list ~sep:comma Structure.Element.pp) t)
          p.Omq.Session.certified;
        (match next with
        | Some t ->
            Fmt.pr "resume from tuple (%a)@."
              Fmt.(list ~sep:comma Structure.Element.pp)
              t
        | None -> ());
        if stats then Fmt.pr "%a@." Reasoner.Stats.pp global
      end;
      Ok (reason_code reason)
    in
    let complete consistent answers =
      if c.json then
        print_response
          (P.Evaled
             {
               result = { P.consistent; boolean; tuples = names answers };
               stats = proto_stats ();
             })
      else begin
        if not consistent then
          Fmt.pr
            "instance inconsistent with the ontology: every tuple is an answer@."
        else if boolean then Fmt.pr "certain: %b@." (answers <> [])
        else begin
          Fmt.pr "%d certain answer(s)@." (List.length answers);
          List.iter
            (fun t ->
              Fmt.pr "  (%a)@." Fmt.(list ~sep:comma Structure.Element.pp) t)
            answers
        end;
        if stats then Fmt.pr "%a@." Reasoner.Stats.pp global
      end;
      Ok 0
    in
    let no_partial = { Omq.Session.certified = []; undecided = Seq.empty } in
    match Omq.Session.is_consistent_within budget session with
    | `Timeout () -> partial Reasoner.Budget.Timeout no_partial
    | `Out_of_fuel () -> partial Reasoner.Budget.Fuel no_partial
    | `Ok false -> complete false []
    | `Ok true -> (
        match Omq.Session.certain_answers_within budget session with
        | `Ok answers -> complete true answers
        | `Timeout p -> partial Reasoner.Budget.Timeout p
        | `Out_of_fuel p -> partial Reasoner.Budget.Fuel p)
  in
  Cmd.v
    (Cmd.info "eval" ~exits
       ~doc:
         "Certain answers of a UCQ over an instance w.r.t. an ontology. With \
          $(b,--timeout), $(b,--fuel) or $(b,--max-clauses) the evaluation \
          degrades gracefully: a tripped budget prints the tuples certified \
          so far plus a resumption hint and exits 124 (timeout) or 125 \
          (fuel/clauses).")
    Term.(
      const run $ ontology_arg $ data_arg $ query_arg $ bound_arg $ stats_arg
      $ explain_arg $ common_term)

let gen_cmd =
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")
  in
  let facts_arg =
    Arg.(
      value & opt int 100_000
      & info [ "facts" ] ~docv:"N"
          ~doc:
            "Number of binary-fact draws (duplicates collapse, so the \
             instance holds approximately this many binary facts).")
  in
  let consts_arg =
    Arg.(
      value & opt (some int) None
      & info [ "consts" ] ~docv:"N"
          ~doc:"Number of constants (default: max 300 FACTS/33).")
  in
  let rels_arg =
    Arg.(
      value & opt int 4
      & info [ "rels" ] ~docv:"N" ~doc:"Number of binary relations r0…")
  in
  let unary_arg =
    Arg.(
      value & opt int 4
      & info [ "unary" ] ~docv:"N" ~doc:"Number of unary concepts C0…")
  in
  let unary_p_arg =
    Arg.(
      value & opt float 0.02
      & info [ "unary-p" ] ~docv:"P"
          ~doc:"Probability each concept holds of each constant.")
  in
  let output_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write to FILE instead of standard output.")
  in
  let run seed facts consts rels unary unary_p output =
    run_result @@ fun () ->
    let rng = Random.State.make [| seed |] in
    let nconst =
      match consts with Some n -> n | None -> max 300 (facts / 33)
    in
    let inst =
      Structure.Randgen.large ~rng ~nconst ~nrels:rels ~nunary:unary ~unary_p
        ~nfacts:facts ()
    in
    let buf = Buffer.create (1 lsl 20) in
    List.iter
      (fun (f : Structure.Instance.fact) ->
        Buffer.add_string buf f.rel;
        Buffer.add_char buf '(';
        List.iteri
          (fun i e ->
            if i > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf (element_name e))
          f.args;
        Buffer.add_string buf ")\n")
      (Structure.Instance.facts inst);
    (match output with
    | None -> print_string (Buffer.contents buf)
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Buffer.contents buf)));
    Ok 0
  in
  Cmd.v
    (Cmd.info "gen" ~exits
       ~doc:
         "Generate a deterministic large random instance in the text fact \
          format ($(b,R(a,b)) lines, sorted). Facts are drawn directly \
          rather than by enumerating the tuple space, so $(i,10^5)–$(i,10^6) \
          facts are cheap; the same seed always yields the same instance.")
    Term.(
      const run $ seed_arg $ facts_arg $ consts_arg $ rels_arg $ unary_arg
      $ unary_p_arg $ output_arg)

let fig1_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit a machine-readable JSON array on stdout.")
  in
  let run json =
    if json then
      Fmt.pr "%s@."
        (json_list
           (List.map
              (fun (name, (ev : Classify.Landscape.evidence), expected) ->
                json_obj
                  [
                    ("fragment", json_string name);
                    ("computed", json_string (status_name ev.status));
                    ("paper", json_string (status_name expected));
                    ("match", json_bool (ev.status = expected));
                  ])
              Classify.Landscape.figure1))
    else begin
      Fmt.pr "%-18s %-14s %-14s@." "fragment" "computed" "paper";
      List.iter
        (fun (name, (ev : Classify.Landscape.evidence), expected) ->
          Fmt.pr "%-18s %-14s %-14s %s@." name
            (Fmt.str "%a" Classify.Landscape.pp_status ev.status)
            (Fmt.str "%a" Classify.Landscape.pp_status expected)
            (if ev.status = expected then "ok" else "MISMATCH"))
        Classify.Landscape.figure1
    end;
    0
  in
  Cmd.v
    (Cmd.info "fig1" ~exits ~doc:"Regenerate the Figure 1 landscape.")
    Term.(const run $ json_arg)

let corpus_cmd =
  let seed_arg = Arg.(value & opt int 2017 & info [ "seed" ] ~doc:"Corpus seed.") in
  let n_arg = Arg.(value & opt int 411 & info [ "n" ] ~doc:"Corpus size.") in
  let dir_arg =
    Arg.(
      value
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:
            "Directory of $(b,.dl) ontology files. When omitted, the \
             synthetic BioPortal corpus ($(b,--seed)/$(b,-n)) is used.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains. Results are assembled in submission order, so \
             stdout is bit-identical for every $(docv).")
  in
  let classify_flag =
    Arg.(
      value & flag
      & info [ "classify" ]
          ~doc:"Classify every ontology in the Figure 1 landscape.")
  in
  let eval_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "eval" ] ~docv:"QUERY"
          ~doc:
            "Evaluate this UCQ over $(b,--data) w.r.t. every ontology of the \
             corpus.")
  in
  let data_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "data" ] ~docv:"FILE" ~doc:"Instance file for $(b,--eval).")
  in
  let bound_arg =
    Arg.(
      value & opt int 2 & info [ "max-extra" ] ~doc:"Countermodel domain bound.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Report aggregated engine counters on stderr after the batch.")
  in
  (* Stdout carries only schedule-independent data: per-item verdicts in
     submission order. Wall time, job count and engine counters vary run
     to run (and with the item-to-domain assignment), so they go to
     stderr — the parallel-determinism CI job diffs stdout across
     [--jobs] counts byte for byte. *)
  let summary stats (report : Omq.Corpus.report) =
    let tripped =
      List.length
        (List.filter
           (fun (r : Omq.Corpus.result_one) -> Result.is_error r.outcome)
           report.results)
    in
    Fmt.epr "corpus: %d item(s), jobs=%d, %.3fs, %d tripped@."
      (List.length report.results)
      report.jobs report.seconds tripped;
    if stats then Fmt.epr "%a@." Reasoner.Stats.pp report.total
  in
  let exit_of report =
    match Omq.Corpus.worst_failure report with
    | None -> 0
    | Some reason -> reason_code reason
  in
  let failure_fields (f : Omq.Corpus.failure) =
    [ ("outcome", json_string (reason_name f.reason)) ]
  in
  let render_classify json report =
    if json then
      Fmt.pr "%s@."
        (json_obj
           [
             ("task", json_string "classify");
             ("count", string_of_int (List.length report.Omq.Corpus.results));
             ( "items",
               json_list
                 (List.map
                    (fun (r : Omq.Corpus.result_one) ->
                      json_obj
                        (("name", json_string r.item_name)
                         ::
                         (match r.outcome with
                         | Error f -> failure_fields f
                         | Ok (Omq.Corpus.Evaluated _) -> assert false
                         | Ok (Omq.Corpus.Classified c) ->
                             [
                               ("outcome", json_string "ok");
                               ("dl_name", json_string c.dl_name);
                               ("depth", string_of_int c.depth);
                               ( "fragment",
                                 match c.fragment with
                                 | Some d -> json_string (Gf.Fragment.name d)
                                 | None -> "null" );
                               ( "status",
                                 json_string
                                   (status_name c.evidence.Classify.Landscape.status)
                               );
                             ])))
                    report.Omq.Corpus.results) );
           ])
    else
      List.iter
        (fun (r : Omq.Corpus.result_one) ->
          match r.outcome with
          | Error f ->
              Fmt.pr "%-14s %a@." r.item_name Reasoner.Budget.pp_reason f.reason
          | Ok (Omq.Corpus.Evaluated _) -> assert false
          | Ok (Omq.Corpus.Classified c) ->
              Fmt.pr "%-14s %-10s depth=%d  %-12s %a@." r.item_name c.dl_name
                c.depth
                (match c.fragment with
                | Some d -> Gf.Fragment.name d
                | None -> "outside")
                Classify.Landscape.pp_status
                c.evidence.Classify.Landscape.status)
        report.Omq.Corpus.results
  in
  let render_eval json q report =
    let boolean = Query.Ucq.is_boolean q in
    let json_answers answers =
      json_list
        (List.map
           (fun t ->
             json_list (List.map (fun e -> json_string (element_name e)) t))
           answers)
    in
    if json then
      Fmt.pr "%s@."
        (json_obj
           [
             ("task", json_string "eval");
             ("boolean", json_bool boolean);
             ("count", string_of_int (List.length report.Omq.Corpus.results));
             ( "items",
               json_list
                 (List.map
                    (fun (r : Omq.Corpus.result_one) ->
                      json_obj
                        (("name", json_string r.item_name)
                         ::
                         (match r.outcome with
                         | Error f -> failure_fields f
                         | Ok (Omq.Corpus.Classified _) -> assert false
                         | Ok (Omq.Corpus.Evaluated e) ->
                             ("outcome", json_string "ok")
                             :: ("consistent", json_bool e.consistent)
                             ::
                             (if not e.consistent then []
                              else if boolean then
                                [ ("certain", json_bool (e.answers <> [])) ]
                              else
                                [
                                  ( "answer_count",
                                    string_of_int (List.length e.answers) );
                                  ("answers", json_answers e.answers);
                                ]))))
                    report.Omq.Corpus.results) );
           ])
    else
      List.iter
        (fun (r : Omq.Corpus.result_one) ->
          match r.outcome with
          | Error f ->
              Fmt.pr "%-14s %a@." r.item_name Reasoner.Budget.pp_reason f.reason
          | Ok (Omq.Corpus.Classified _) -> assert false
          | Ok (Omq.Corpus.Evaluated e) ->
              if not e.consistent then Fmt.pr "%-14s inconsistent@." r.item_name
              else if boolean then
                Fmt.pr "%-14s certain=%b@." r.item_name (e.answers <> [])
              else
                Fmt.pr "%-14s %d answer(s)@." r.item_name
                  (List.length e.answers))
        report.Omq.Corpus.results
  in
  let run dir seed n jobs classify eval_q data max_extra stats (c : common) =
    run_result @@ fun () ->
    with_tracing c @@ fun () ->
    let items () =
      match dir with
      | Some d -> Omq.Corpus.load_dir d
      | None -> Ok (Omq.Corpus.generate ~seed ~n ())
    in
    match (classify, eval_q) with
    | true, Some _ -> Error "--classify and --eval are mutually exclusive"
    | false, Some qtext ->
        let* data_path =
          match data with
          | Some d -> Ok d
          | None -> Error "--eval requires --data FILE"
        in
        let* q = load_query qtext in
        let* d = load_instance data_path in
        let* items = items () in
        let report =
          Omq.Corpus.run ?timeout:c.timeout ?fuel:c.fuel
            ?max_clauses:c.max_clauses ~jobs
            (Omq.Corpus.Eval { query = q; data = d; max_extra })
            items
        in
        render_eval c.json q report;
        summary stats report;
        Ok (exit_of report)
    | true, None | false, None when classify || dir <> None ->
        let* items = items () in
        let report =
          Omq.Corpus.run ?timeout:c.timeout ?fuel:c.fuel
            ?max_clauses:c.max_clauses ~jobs Omq.Corpus.Classify items
        in
        render_classify c.json report;
        summary stats report;
        Ok (exit_of report)
    | _ ->
        (* Legacy default: the Section 1 table over the synthetic corpus,
           analyzed on the pool (submission-order tabulation keeps the
           table identical at every --jobs). *)
        let corpus = Array.of_list (Bioportal.Generate.corpus ~seed ~n ()) in
        let reports =
          Parallel.Pool.with_pool ~jobs (fun pool ->
              Parallel.Pool.map pool Bioportal.Analyze.analyze corpus)
        in
        let table = Bioportal.Analyze.tabulate (Array.to_list reports) in
        Fmt.pr "%a@." Bioportal.Analyze.pp_table table;
        let pt, pf, pq = Bioportal.Analyze.paper_reference in
        Fmt.pr
          "paper reference: %d total, %d in ALCHIF depth 2, %d in ALCHIQ depth 1@."
          pt pf pq;
        Ok 0
  in
  Cmd.v
    (Cmd.info "corpus" ~exits
       ~doc:
         "Batch-process a corpus of ontologies on $(b,--jobs) worker domains: \
          $(b,--classify) locates each in the Figure 1 landscape, $(b,--eval) \
          answers a UCQ over $(b,--data) w.r.t. each; with neither, prints \
          the Section 1 table of the synthetic BioPortal corpus. Per-item \
          verdicts go to stdout in submission order (bit-identical for every \
          job count); timings and counters go to stderr.")
    Term.(
      const run $ dir_arg $ seed_arg $ n_arg $ jobs_arg $ classify_flag
      $ eval_arg $ data_arg $ bound_arg $ stats_arg $ common_term)

let decide_cmd =
  let out_arg =
    Arg.(
      value & opt int 5
      & info [ "max-outdegree" ] ~doc:"Bouquet outdegree bound.")
  in
  let run path max_outdegree (c : common) =
    run_result @@ fun () ->
    with_tracing c @@ fun () ->
    let* tbox = load_tbox path in
    let o = Dl.Translate.tbox tbox in
    let budget = budget_of c in
    let report = function
      | Classify.Decide.Ptime_evidence n ->
          if c.json then print_response (P.Decided { verdict = `Ptime n })
          else Fmt.pr "PTIME query evaluation (evidence from %d bouquets)@." n;
          Ok 0
      | Classify.Decide.Conp_hard w ->
          let witness =
            String.concat " "
              (String.split_on_char '\n' (Fmt.str "%a" Structure.Instance.pp w))
          in
          if c.json then
            print_response (P.Decided { verdict = `Conp_hard witness })
          else
            Fmt.pr "coNP-hard; non-materializable bouquet:@.%a@."
              Structure.Instance.pp w;
          Ok 0
    in
    let partial reason checked =
      if c.json then print_response (P.Decide_partial { reason; checked })
      else
        Fmt.pr "%a: %d bouquet(s) checked before exhaustion (all PTIME so far)@."
          Reasoner.Budget.pp_reason reason checked;
      Ok (reason_code reason)
    in
    match Classify.Decide.try_decide budget ~max_outdegree o with
    | `Ok verdict -> report verdict
    | `Timeout checked -> partial Reasoner.Budget.Timeout checked
    | `Out_of_fuel checked -> partial Reasoner.Budget.Fuel checked
  in
  Cmd.v
    (Cmd.info "decide" ~exits
       ~doc:
         "Decide PTIME query evaluation by bouquet materializability \
          (Theorem 13). With $(b,--timeout), $(b,--fuel) or \
          $(b,--max-clauses) a tripped budget reports the bouquets checked \
          so far and exits 124 or 125.")
    Term.(const run $ ontology_arg $ out_arg $ common_term)

(* ------------------------------------------------------------------ *)
(* serve / request: the daemon and its scripting client. *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix domain socket path (default $(b,omq.sock) when $(b,--port) \
           is not given).")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Host for $(b,--port).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port to use instead of a Unix socket.")

let addr_of socket host port =
  match (socket, port) with
  | Some _, Some _ -> Error "--socket and --port are mutually exclusive"
  | Some s, None -> Ok (Omqd.Daemon.Unix_path s)
  | None, Some p -> Ok (Omqd.Daemon.Tcp (host, p))
  | None, None -> Ok (Omqd.Daemon.Unix_path "omq.sock")

(* HOST:PORT (last colon splits, so the HOST may not be an IPv6
   literal) is TCP; anything else is a Unix socket path. *)
let parse_listen_addr s =
  match String.rindex_opt s ':' with
  | Some i -> (
      match
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      with
      | Some p -> Omqd.Daemon.Tcp (String.sub s 0 i, p)
      | None -> Omqd.Daemon.Unix_path s)
  | None -> Omqd.Daemon.Unix_path s

let serve_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains. Sessions are pinned to a worker at open \
             (sticky routing), so one session's requests are always \
             serialised on one domain.")
  in
  let max_frame_arg =
    Arg.(
      value
      & opt int Omqd.Daemon.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:
            "Reject request frames longer than $(docv) with a typed \
             frame_too_large error (the connection stays usable).")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Journal directory. Every acknowledged open/insert/close is \
             appended to $(docv)/omq.journal and fsync'd before the \
             response is sent; on startup the journal is replayed, so a \
             killed-and-restarted daemon resurrects every live session \
             with identical certain answers.")
  in
  let journal_compact_arg =
    Arg.(
      value
      & opt int Omqd.Daemon.default_journal_compact
      & info [ "journal-compact" ] ~docv:"BYTES"
          ~doc:
            "Compact the journal (one open per live session) once it \
             exceeds $(docv) bytes; 0 disables compaction.")
  in
  let supervise_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "supervise" ] ~docv:"SECONDS"
          ~doc:
            "Quarantine a worker domain whose current job has run longer \
             than $(docv): its in-flight requests fail with the retryable \
             worker_lost error, a fresh domain is spawned, and its \
             sessions are replayed.")
  in
  let max_inflight_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Shed requests with the retryable overloaded error while \
             $(docv) jobs are already in flight.")
  in
  let max_outbuf_arg =
    Arg.(
      value
      & opt int Omqd.Daemon.default_max_outbuf
      & info [ "max-outbuf" ] ~docv:"BYTES"
          ~doc:
            "Disconnect a client whose unsent responses exceed $(docv) \
             bytes (a reader that stopped reading).")
  in
  let metrics_addr_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-addr" ] ~docv:"ADDR"
          ~doc:
            "Serve Prometheus text exposition on $(b,GET /metrics) (and \
             the live telemetry dump on $(b,GET /telemetry)) at $(docv): \
             HOST:PORT for TCP, any other string as a Unix socket path. \
             Plain HTTP/1.0 on the daemon's own select loop.")
  in
  let log_format_arg =
    Arg.(
      value
      & opt (enum [ ("text", Obs.Log.Text); ("json", Obs.Log.Json) ]) Obs.Log.Text
      & info [ "log-format" ] ~docv:"FMT"
          ~doc:
            "Log record format on stderr: $(b,text) or $(b,json) (one \
             object per line, machine-parseable).")
  in
  let log_level_arg =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Minimum log level: debug, info, warn or error.")
  in
  let flight_dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dump" ] ~docv:"PATH"
          ~doc:
            "Write the SIGUSR1 telemetry dump (flight-recorder ring, \
             per-worker rows, latency quantiles) to $(docv); without it \
             the dump is one JSON line on stderr.")
  in
  let no_telemetry_arg =
    Arg.(
      value & flag
      & info [ "no-telemetry" ]
          ~doc:
            "Disable the flight recorder, the request-latency histogram \
             and per-request GC sampling (leaves one load+branch per \
             completion).")
  in
  let flight_capacity_arg =
    Arg.(
      value
      & opt int Omqd.Telemetry.default_capacity
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:"Flight-recorder ring capacity (completed request spans).")
  in
  let run socket host port jobs max_frame journal journal_compact supervise
      max_inflight max_outbuf metrics_addr log_format log_level flight_dump
      no_telemetry flight_capacity (c : common) =
    run_result @@ fun () ->
    let* addr = addr_of socket host port in
    let* level =
      match Obs.Log.level_of_string log_level with
      | Some l -> Ok l
      | None -> Error (Printf.sprintf "unknown log level %S" log_level)
    in
    Obs.Log.set_level level;
    Obs.Log.set_format log_format;
    let cfg =
      Omqd.Daemon.config ~addr ~jobs
        ~caps:
          {
            P.timeout_s = c.timeout;
            fuel = c.fuel;
            max_clauses = c.max_clauses;
          }
        ~max_frame
        ?trace:(Option.map (fun path -> (c.trace_format, path)) c.trace)
        ~log:true ?journal ~journal_compact ?supervise ?max_inflight
        ~max_outbuf ~signals:true
        ?metrics_addr:(Option.map parse_listen_addr metrics_addr)
        ~telemetry:(not no_telemetry) ?flight_dump ~flight_capacity ()
    in
    let* () = Omqd.Daemon.run cfg in
    Ok 0
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Serve the Omq.Protocol wire API (newline-delimited JSON frames) \
          on a Unix or TCP socket until a shutdown request, SIGTERM or \
          SIGINT (both drain gracefully). Budget flags \
          ($(b,--timeout)/$(b,--fuel)/$(b,--max-clauses)) become \
          per-request admission caps: a request asking for more is clamped, \
          a tripped budget degrades that one request to a typed partial \
          response and the daemon keeps serving. Sessions are updatable in \
          place: $(b,insert_facts)/$(b,retract_facts) maintain the answer \
          set by delta rules and incremental solver calls instead of \
          reopening. With $(b,--journal) the \
          daemon is crash-recoverable (journal-before-ack); with \
          $(b,--supervise) wedged worker domains are quarantined and \
          their sessions replayed. With $(b,--metrics-addr) the daemon \
          also answers Prometheus scrapes; $(b,omq_tool top) renders the \
          same telemetry live.")
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ jobs_arg $ max_frame_arg
      $ journal_arg $ journal_compact_arg $ supervise_arg $ max_inflight_arg
      $ max_outbuf_arg $ metrics_addr_arg $ log_format_arg $ log_level_arg
      $ flight_dump_arg $ no_telemetry_arg $ flight_capacity_arg
      $ common_term)

let request_cmd =
  let frames_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FRAME"
          ~doc:
            "Request frames to send, one JSON object per argument; when \
             none is given, frames are read from stdin (one per line). \
             Frames are sent verbatim — including malformed ones, which \
             makes this the protocol's conformance probe.")
  in
  let run socket host port frames =
    run_result @@ fun () ->
    let* addr = addr_of socket host port in
    let* client = Omqd.Client.connect addr in
    let send line =
      let* resp = Omqd.Client.raw client line in
      Fmt.pr "%s@." resp;
      Ok ()
    in
    let rec send_all = function
      | [] -> Ok ()
      | l :: ls ->
          if String.trim l = "" then send_all ls
          else
            let* () = send l in
            send_all ls
    in
    let result =
      match frames with
      | [] ->
          let rec from_stdin () =
            match input_line stdin with
            | line ->
                let* () = if String.trim line = "" then Ok () else send line in
                from_stdin ()
            | exception End_of_file -> Ok ()
          in
          from_stdin ()
      | ls -> send_all ls
    in
    Omqd.Client.close client;
    let* () = result in
    Ok 0
  in
  Cmd.v
    (Cmd.info "request" ~exits
       ~doc:
         "Send raw Omq.Protocol frames to a running $(b,serve) daemon and \
          print each response line on stdout. Frames come from the command \
          line or stdin and are sent verbatim, so malformed input exercises \
          the server's typed error responses.")
    Term.(const run $ socket_arg $ host_arg $ port_arg $ frames_arg)

let loadgen_cmd =
  let ontology_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"ONTOLOGY" ~doc:"Ontology file (one axiom per line).")
  in
  let data_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"DATA" ~doc:"Instance file (one fact per line).")
  in
  let query_arg =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"QUERY" ~doc:"UCQ, e.g. 'q(x) <- Thumb(x)'.")
  in
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent closed-loop clients.")
  in
  let queries_arg =
    Arg.(
      value & opt int 50
      & info [ "queries" ] ~docv:"M" ~doc:"Evals per client.")
  in
  let bound_arg =
    Arg.(
      value & opt int 2 & info [ "max-extra" ] ~doc:"Countermodel domain bound.")
  in
  let run socket host port ontology data query clients queries max_extra
      (c : common) =
    run_result @@ fun () ->
    let* addr = addr_of socket host port in
    let* ontology = read_file ontology in
    let* data = read_file data in
    let spec =
      {
        Omqd.Loadgen.open_req = P.Open_session { ontology; data; query; max_extra };
        make_eval =
          (fun ~session ->
            P.Eval { session; budget = P.no_budget; want_stats = false });
        expected = None;
      }
    in
    let* s = Omqd.Loadgen.run addr (List.init (max clients 1) (fun _ -> spec)) ~queries in
    if c.json then
      print_endline
        (json_obj
           [
             ("clients", string_of_int s.Omqd.Loadgen.clients);
             ("queries_per_client", string_of_int s.queries_per_client);
             ("total", string_of_int s.total);
             ("ok", string_of_int s.ok);
             ("tripped", string_of_int s.tripped);
             ("errors", string_of_int s.errors);
             ("mismatches", string_of_int s.mismatches);
             ("connect_failures", string_of_int s.connect_failures);
             ("io_failures", string_of_int s.io_failures);
             ("seconds", Printf.sprintf "%.6f" s.seconds);
             ("throughput_rps", Printf.sprintf "%.3f" s.throughput_rps);
             ("p50_ms", Printf.sprintf "%.3f" s.p50_ms);
             ("p99_ms", Printf.sprintf "%.3f" s.p99_ms);
           ])
    else Fmt.pr "%a@." Omqd.Loadgen.pp_summary s;
    Ok 0
  in
  Cmd.v
    (Cmd.info "loadgen" ~exits
       ~doc:
         "Drive closed-loop eval load against a running $(b,serve) daemon: \
          N clients each open a session and issue M evals back to back. \
          Per-client connect/IO failures are counted, not fatal — killing \
          the daemon mid-run still exits 0 with the degradation visible in \
          the summary, which is what the chaos-smoke CI job measures.")
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ ontology_arg $ data_arg
      $ query_arg $ clients_arg $ queries_arg $ bound_arg $ common_term)

(* ------------------------------------------------------------------ *)
(* top: live per-worker view of a running daemon. Polls stats +
   dump_telemetry over the ordinary wire protocol — no metrics
   endpoint needed — and derives rps from the served delta between
   polls. *)

let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval"; "n" ] ~docv:"SECONDS"
          ~doc:"Seconds between polls (clamped to >= 0.1).")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after $(docv) frames; 0 polls until interrupted.")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Print a single frame and exit (no screen clearing).")
  in
  let module J = P.Json in
  let jnum ?(default = Float.nan) name j =
    match J.member name j with Some (J.Num n) -> n | _ -> default
  in
  let jint name j =
    match J.member name j with Some (J.Num n) -> int_of_float n | _ -> 0
  in
  let fmt_ms v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v in
  let fmt_busy v =
    if Float.is_nan v then "idle" else Printf.sprintf "%.3fs" v
  in
  let render_frame ~clear ~rps stats telemetry =
    let buf = Buffer.create 1024 in
    let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    (match stats with
    | P.Server_stats s ->
        pr "omq_tool top — daemon %s — up %.1fs\n"
          (if s.server_version = "" then "(pre-telemetry)"
           else "v" ^ s.server_version)
          s.uptime_s;
        pr
          "served %d (%s)  errors %d  inflight %d  sessions %d  journal %d \
           B / %d entries\n"
          s.served
          (match rps with
          | Some r -> Printf.sprintf "%.1f rps" r
          | None -> "rps: warming up")
          s.errors s.inflight s.sessions s.journal_bytes s.journal_entries;
        let named prefix =
          match s.counters with
          | J.Obj ms ->
              List.filter_map
                (fun (k, v) ->
                  match v with
                  | J.Num n
                    when String.length k >= String.length prefix
                         && String.sub k 0 (String.length prefix) = prefix ->
                      Some
                        (Printf.sprintf "%s=%d"
                           (String.sub k (String.length prefix)
                              (String.length k - String.length prefix))
                           (int_of_float n))
                  | _ -> None)
                ms
          | _ -> []
        in
        let line label prefix =
          match named prefix with
          | [] -> ()
          | xs -> pr "%s: %s\n" label (String.concat "  " xs)
        in
        line "supervision" "serve.supervision.";
        line "chaos" "serve.chaos."
    | _ -> pr "omq_tool top — stats unavailable\n");
    (match telemetry with
    | Some (P.Telemetry { telemetry = t }) ->
        pr "latency ms: p50 %s  p95 %s  p99 %s    flight %d spans (%d \
            dropped)\n"
          (fmt_ms (jnum "p50_ms" t))
          (fmt_ms (jnum "p95_ms" t))
          (fmt_ms (jnum "p99_ms" t))
          (jint "flight_total" t) (jint "flight_dropped" t);
        (match J.member "workers" t with
        | Some (J.Arr rows) when rows <> [] ->
            pr "%6s  %8s  %8s  %9s  %14s  %9s\n" "worker" "sessions"
              "requests" "busy" "major_words" "minor_gcs";
            List.iter
              (fun row ->
                pr "%6d  %8d  %8d  %9s  %14.0f  %9d\n" (jint "domain" row)
                  (jint "sessions" row) (jint "requests" row)
                  (fmt_busy (jnum "busy_s" row))
                  (jnum ~default:0.0 "gc_major_words" row)
                  (jint "gc_minor_collections" row))
              rows
        | _ -> ())
    | Some _ | None -> pr "telemetry: unavailable (daemon too old?)\n");
    if clear then print_string "\027[H\027[2J";
    print_string (Buffer.contents buf);
    flush stdout
  in
  let run socket host port interval iterations once =
    run_result @@ fun () ->
    let* addr = addr_of socket host port in
    let* client = Omqd.Client.connect addr in
    let interval = Float.max 0.1 interval in
    let frames = if once then 1 else iterations in
    let clear = (not once) && Unix.isatty Unix.stdout in
    let prev = ref None in
    let rec poll i =
      if frames > 0 && i >= frames then Ok 0
      else
        let* stats = Omqd.Client.call client P.Stats in
        let telemetry =
          match Omqd.Client.call client P.Dump_telemetry with
          | Ok (P.Telemetry _ as t) -> Some t
          | Ok _ | Error _ -> None
        in
        let now = Obs.Clock.now () in
        let rps =
          match (stats, !prev) with
          | P.Server_stats s, Some (served0, t0) when now > t0 ->
              Some (float_of_int (s.served - served0) /. (now -. t0))
          | _ -> None
        in
        (match stats with
        | P.Server_stats s -> prev := Some (s.served, now)
        | _ -> ());
        render_frame ~clear ~rps stats telemetry;
        if frames > 0 && i + 1 >= frames then Ok 0
        else begin
          Unix.sleepf interval;
          poll (i + 1)
        end
    in
    let result = poll 0 in
    Omqd.Client.close client;
    result
  in
  Cmd.v
    (Cmd.info "top" ~exits
       ~doc:
         "Live view of a running $(b,serve) daemon: polls $(b,stats) and \
          $(b,dump_telemetry) over the wire protocol and renders uptime, \
          throughput (derived from the served delta between polls), \
          latency quantiles, supervision/chaos counters and a per-worker \
          table (sessions, requests, busy time, GC). Use $(b,--once) for \
          a single machine-greppable frame.")
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ interval_arg
      $ iterations_arg $ once_arg)

let () =
  let doc = "Ontology-mediated querying with the guarded fragment (PODS'17 reproduction)." in
  let cmd =
    Cmd.group (Cmd.info "omq_tool" ~version:"1.0" ~doc ~exits)
      [
        classify_cmd;
        eval_cmd;
        gen_cmd;
        fig1_cmd;
        corpus_cmd;
        decide_cmd;
        serve_cmd;
        request_cmd;
        loadgen_cmd;
        top_cmd;
      ]
  in
  (* Map exits ourselves: cmdliner's defaults (cli_error = 124,
     internal_error = 125) collide with the budget-trip codes. *)
  exit
    (match Cmd.eval_value cmd with
    | Ok (`Ok code) -> code
    | Ok (`Version | `Help) -> 0
    | Error (`Parse | `Term) -> exit_cli_misuse
    | Error `Exn -> exit_internal)
