(* The command-line front end:

     omq_tool classify ONTOLOGY.dl [--json]
     omq_tool eval ONTOLOGY.dl DATA.txt 'q(x) <- Thumb(x)' [--json] [--stats]
     omq_tool fig1 [--json]
     omq_tool corpus --seed 2017 -n 411
     omq_tool decide ONTOLOGY.dl [--json]
*)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Input loading: every parser in the tool reports errors the same way,
   as [Error "file:line: message"], and every command funnels through
   [run_result]. *)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error m -> Error m

let ( let* ) = Result.bind

let load_tbox path =
  let* text = read_file path in
  try Ok (Dl.Parser.parse_tbox text) with
  | Dl.Parser.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" path line message)
  | Dl.Lexer.Lex_error { line; col; message } ->
      Error (Printf.sprintf "%s:%d:%d: %s" path line col message)

let load_instance path =
  let* text = read_file path in
  try Ok (Structure.Parse.instance_of_string text) with
  | Structure.Parse.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" path line message)

let load_query text =
  try Ok (Query.Parse.ucq_of_string text)
  with Query.Parse.Parse_error m -> Error (Printf.sprintf "query: %s" m)

let run_result f =
  match f () with
  | Ok code -> code
  | Error m ->
      Fmt.epr "omq_tool: %s@." m;
      1

(* ------------------------------------------------------------------ *)
(* Hand-rolled JSON (the toolchain ships no JSON library). *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* [fields] are already-rendered JSON values. *)
let json_obj fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> json_string k ^ ": " ^ v) fields)
  ^ "}"

let json_list items = "[" ^ String.concat ", " items ^ "]"
let json_bool b = if b then "true" else "false"

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit a machine-readable JSON object on stdout.")

let status_name (s : Classify.Landscape.status) =
  Fmt.str "%a" Classify.Landscape.pp_status s

let element_name e = Fmt.str "%a" Structure.Element.pp e

(* ------------------------------------------------------------------ *)
(* Resource budgets: --timeout / --fuel build a Reasoner.Budget that the
   evaluation runs under. A tripped budget is not an error — the tool
   prints a partial result and exits with a distinct code. Cmdliner's
   default cli_error is also 124, so command-line misuse is remapped to
   the conventional 2 to keep 124 = timed out unambiguous. *)

let exit_timeout = 124
let exit_fuel = 125
let exit_cli_misuse = 2

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock deadline in seconds. On expiry the tool reports the \
           partial result computed so far and exits with code 124.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Solver fuel: total propagations + conflicts allowed. On \
           exhaustion the tool reports the partial result computed so far \
           and exits with code 125.")

let budget_of timeout fuel =
  match (timeout, fuel) with
  | None, None -> Reasoner.Budget.unlimited
  | _ -> Reasoner.Budget.create ?timeout ?fuel ()

let reason_code = function
  | Reasoner.Budget.Timeout -> exit_timeout
  | Reasoner.Budget.Fuel -> exit_fuel

let reason_name = function
  | Reasoner.Budget.Timeout -> "timeout"
  | Reasoner.Budget.Fuel -> "out_of_fuel"

(* ------------------------------------------------------------------ *)
(* Tracing: --trace FILE installs an Obs collector for the duration of
   the command and exports it in the requested format; --profile prints
   a per-phase self/total table (to stderr, so --json stays clean on
   stdout). Both work together and compose with budget trips: a tripped
   run exports a closed trace whose root span carries the reason. *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a trace of the run and write it to $(docv). The default \
           format loads into chrome://tracing or ui.perfetto.dev; see \
           $(b,--trace-format).")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("chrome", Obs.Export.Chrome); ("jsonl", Obs.Export.Jsonl) ])
        Obs.Export.Chrome
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:"Trace file format: $(b,chrome) (trace-event JSON) or $(b,jsonl).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print a per-phase profile (span name, count, self and total \
           seconds) on stderr after the command.")

let with_tracing trace fmt profile f =
  if trace = None && not profile then f ()
  else begin
    let r, c = Obs.Trace.collect f in
    if profile then
      Fmt.epr "%a@." Obs.Export.pp_profile (Obs.Export.profile c);
    match Option.iter (fun path -> Obs.Export.to_file fmt c path) trace with
    | () -> r
    | exception Sys_error m -> Error m
  end

(* ------------------------------------------------------------------ *)

let ontology_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"ONTOLOGY" ~doc:"DL ontology file (one axiom per line).")

let classify_cmd =
  let run path json trace fmt profile =
    run_result @@ fun () ->
    with_tracing trace fmt profile @@ fun () ->
    let* tbox = load_tbox path in
    let o = Dl.Translate.tbox tbox in
    let fragment = Gf.Fragment.of_ontology o in
    let ev = Classify.Landscape.of_tbox tbox in
    if json then
      Fmt.pr "%s@."
        (json_obj
           [
             ("dl_name", json_string (Dl.Tbox.name tbox));
             ("depth", string_of_int (Dl.Tbox.depth tbox));
             ( "fragment",
               match fragment with
               | Some d -> json_string (Gf.Fragment.name d)
               | None -> "null" );
             ("status", json_string (status_name ev.Classify.Landscape.status));
             ("evidence_fragment", json_string ev.Classify.Landscape.fragment);
             ("source", json_string ev.Classify.Landscape.source);
           ])
    else begin
      Fmt.pr "DL name:   %s (depth %d)@." (Dl.Tbox.name tbox)
        (Dl.Tbox.depth tbox);
      (match fragment with
      | Some d -> Fmt.pr "fragment:  %s@." (Gf.Fragment.name d)
      | None -> Fmt.pr "fragment:  outside uGF/uGC2@.");
      Fmt.pr "status:    %a@." Classify.Landscape.pp_evidence ev
    end;
    Ok 0
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Locate an ontology in the Figure 1 landscape.")
    Term.(
      const run $ ontology_arg $ json_arg $ trace_arg $ trace_format_arg
      $ profile_arg)

let eval_cmd =
  let data_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"DATA" ~doc:"Instance file (one fact per line).")
  in
  let query_arg =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"QUERY" ~doc:"UCQ, e.g. 'q(x) <- Thumb(x)'.")
  in
  let bound_arg =
    Arg.(value & opt int 2 & info [ "max-extra" ] ~doc:"Countermodel domain bound.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Report engine counters (groundings, solves, cache traffic).")
  in
  let run path data query max_extra timeout fuel json stats trace fmt profile =
    run_result @@ fun () ->
    with_tracing trace fmt profile @@ fun () ->
    let* tbox = load_tbox path in
    let* d = load_instance data in
    let* q = load_query query in
    let omq = Omq.of_tbox tbox q in
    Reasoner.Stats.reset (Reasoner.Stats.global ());
    let budget = budget_of timeout fuel in
    let session = Omq.open_session ~max_extra omq d in
    let global = Reasoner.Stats.global () in
    let json_answers answers =
      json_list
        (List.map
           (fun t ->
             json_list (List.map (fun e -> json_string (element_name e)) t))
           answers)
    in
    let maybe_stats payload =
      if stats then payload @ [ ("stats", Reasoner.Stats.to_json global) ]
      else payload
    in
    (* A tripped budget: report what was certified before exhaustion and
       where to resume, then exit with the reason's code. *)
    let partial reason (p : Omq.Session.partial_answers) =
      let next =
        match p.Omq.Session.undecided () with
        | Seq.Nil -> None
        | Seq.Cons (t, _) -> Some t
      in
      if json then
        Fmt.pr "%s@."
          (json_obj
             (maybe_stats
                [
                  ("outcome", json_string (reason_name reason));
                  ("certified", json_answers p.Omq.Session.certified);
                  ( "resume_from",
                    match next with
                    | Some t ->
                        json_list
                          (List.map (fun e -> json_string (element_name e)) t)
                    | None -> "null" );
                ]))
      else begin
        Fmt.pr "%a: partial result@." Reasoner.Budget.pp_reason reason;
        Fmt.pr "%d tuple(s) certified before exhaustion@."
          (List.length p.Omq.Session.certified);
        List.iter
          (fun t ->
            Fmt.pr "  (%a)@." Fmt.(list ~sep:comma Structure.Element.pp) t)
          p.Omq.Session.certified;
        (match next with
        | Some t ->
            Fmt.pr "resume from tuple (%a)@."
              Fmt.(list ~sep:comma Structure.Element.pp)
              t
        | None -> ());
        if stats then Fmt.pr "%a@." Reasoner.Stats.pp global
      end;
      Ok (reason_code reason)
    in
    let complete consistent answers =
      if json then begin
        let base =
          [
            ("outcome", json_string "ok");
            ("consistent", json_bool consistent);
            ("boolean", json_bool (Query.Ucq.is_boolean q));
          ]
        in
        let payload =
          if not consistent then base
          else if Query.Ucq.is_boolean q then
            base @ [ ("certain", json_bool (answers <> [])) ]
          else
            base
            @ [
                ("count", string_of_int (List.length answers));
                ("answers", json_answers answers);
              ]
        in
        Fmt.pr "%s@." (json_obj (maybe_stats payload))
      end
      else begin
        if not consistent then
          Fmt.pr
            "instance inconsistent with the ontology: every tuple is an answer@."
        else if Query.Ucq.is_boolean q then Fmt.pr "certain: %b@." (answers <> [])
        else begin
          Fmt.pr "%d certain answer(s)@." (List.length answers);
          List.iter
            (fun t ->
              Fmt.pr "  (%a)@." Fmt.(list ~sep:comma Structure.Element.pp) t)
            answers
        end;
        if stats then Fmt.pr "%a@." Reasoner.Stats.pp global
      end;
      Ok 0
    in
    let no_partial = { Omq.Session.certified = []; undecided = Seq.empty } in
    match Omq.Session.is_consistent_within budget session with
    | `Timeout () -> partial Reasoner.Budget.Timeout no_partial
    | `Out_of_fuel () -> partial Reasoner.Budget.Fuel no_partial
    | `Ok false -> complete false []
    | `Ok true -> (
        match Omq.Session.certain_answers_within budget session with
        | `Ok answers -> complete true answers
        | `Timeout p -> partial Reasoner.Budget.Timeout p
        | `Out_of_fuel p -> partial Reasoner.Budget.Fuel p)
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:
         "Certain answers of a UCQ over an instance w.r.t. an ontology. With \
          $(b,--timeout) or $(b,--fuel) the evaluation degrades gracefully: \
          a tripped budget prints the tuples certified so far plus a \
          resumption hint and exits 124 (timeout) or 125 (fuel).")
    Term.(
      const run $ ontology_arg $ data_arg $ query_arg $ bound_arg $ timeout_arg
      $ fuel_arg $ json_arg $ stats_arg $ trace_arg $ trace_format_arg
      $ profile_arg)

let fig1_cmd =
  let run json =
    if json then
      Fmt.pr "%s@."
        (json_list
           (List.map
              (fun (name, (ev : Classify.Landscape.evidence), expected) ->
                json_obj
                  [
                    ("fragment", json_string name);
                    ("computed", json_string (status_name ev.status));
                    ("paper", json_string (status_name expected));
                    ("match", json_bool (ev.status = expected));
                  ])
              Classify.Landscape.figure1))
    else begin
      Fmt.pr "%-18s %-14s %-14s@." "fragment" "computed" "paper";
      List.iter
        (fun (name, (ev : Classify.Landscape.evidence), expected) ->
          Fmt.pr "%-18s %-14s %-14s %s@." name
            (Fmt.str "%a" Classify.Landscape.pp_status ev.status)
            (Fmt.str "%a" Classify.Landscape.pp_status expected)
            (if ev.status = expected then "ok" else "MISMATCH"))
        Classify.Landscape.figure1
    end;
    0
  in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Regenerate the Figure 1 landscape.")
    Term.(const run $ json_arg)

let corpus_cmd =
  let seed_arg = Arg.(value & opt int 2017 & info [ "seed" ] ~doc:"Corpus seed.") in
  let n_arg = Arg.(value & opt int 411 & info [ "n" ] ~doc:"Corpus size.") in
  let dir_arg =
    Arg.(
      value
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:
            "Directory of $(b,.dl) ontology files. When omitted, the \
             synthetic BioPortal corpus ($(b,--seed)/$(b,-n)) is used.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains. Results are assembled in submission order, so \
             stdout is bit-identical for every $(docv).")
  in
  let classify_flag =
    Arg.(
      value & flag
      & info [ "classify" ]
          ~doc:"Classify every ontology in the Figure 1 landscape.")
  in
  let eval_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "eval" ] ~docv:"QUERY"
          ~doc:
            "Evaluate this UCQ over $(b,--data) w.r.t. every ontology of the \
             corpus.")
  in
  let data_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "data" ] ~docv:"FILE" ~doc:"Instance file for $(b,--eval).")
  in
  let bound_arg =
    Arg.(
      value & opt int 2 & info [ "max-extra" ] ~doc:"Countermodel domain bound.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Report aggregated engine counters on stderr after the batch.")
  in
  let clauses_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-clauses" ] ~docv:"N"
          ~doc:
            "Per-item cap on emitted ground clauses; a tripped item reports \
             out_of_fuel. Deterministic, so stdout stays identical across \
             $(b,--jobs) counts.")
  in
  (* Stdout carries only schedule-independent data: per-item verdicts in
     submission order. Wall time, job count and engine counters vary run
     to run (and with the item-to-domain assignment), so they go to
     stderr — the parallel-determinism CI job diffs stdout across
     [--jobs] counts byte for byte. *)
  let summary stats (report : Omq.Corpus.report) =
    let tripped =
      List.length
        (List.filter
           (fun (r : Omq.Corpus.result_one) -> Result.is_error r.outcome)
           report.results)
    in
    Fmt.epr "corpus: %d item(s), jobs=%d, %.3fs, %d tripped@."
      (List.length report.results)
      report.jobs report.seconds tripped;
    if stats then Fmt.epr "%a@." Reasoner.Stats.pp report.total
  in
  let exit_of report =
    match Omq.Corpus.worst_failure report with
    | None -> 0
    | Some reason -> reason_code reason
  in
  let failure_fields (f : Omq.Corpus.failure) =
    [ ("outcome", json_string (reason_name f.reason)) ]
  in
  let render_classify json report =
    if json then
      Fmt.pr "%s@."
        (json_obj
           [
             ("task", json_string "classify");
             ("count", string_of_int (List.length report.Omq.Corpus.results));
             ( "items",
               json_list
                 (List.map
                    (fun (r : Omq.Corpus.result_one) ->
                      json_obj
                        (("name", json_string r.item_name)
                         ::
                         (match r.outcome with
                         | Error f -> failure_fields f
                         | Ok (Omq.Corpus.Evaluated _) -> assert false
                         | Ok (Omq.Corpus.Classified c) ->
                             [
                               ("outcome", json_string "ok");
                               ("dl_name", json_string c.dl_name);
                               ("depth", string_of_int c.depth);
                               ( "fragment",
                                 match c.fragment with
                                 | Some d -> json_string (Gf.Fragment.name d)
                                 | None -> "null" );
                               ( "status",
                                 json_string
                                   (status_name c.evidence.Classify.Landscape.status)
                               );
                             ])))
                    report.Omq.Corpus.results) );
           ])
    else
      List.iter
        (fun (r : Omq.Corpus.result_one) ->
          match r.outcome with
          | Error f ->
              Fmt.pr "%-14s %a@." r.item_name Reasoner.Budget.pp_reason f.reason
          | Ok (Omq.Corpus.Evaluated _) -> assert false
          | Ok (Omq.Corpus.Classified c) ->
              Fmt.pr "%-14s %-10s depth=%d  %-12s %a@." r.item_name c.dl_name
                c.depth
                (match c.fragment with
                | Some d -> Gf.Fragment.name d
                | None -> "outside")
                Classify.Landscape.pp_status
                c.evidence.Classify.Landscape.status)
        report.Omq.Corpus.results
  in
  let render_eval json q report =
    let boolean = Query.Ucq.is_boolean q in
    let json_answers answers =
      json_list
        (List.map
           (fun t ->
             json_list (List.map (fun e -> json_string (element_name e)) t))
           answers)
    in
    if json then
      Fmt.pr "%s@."
        (json_obj
           [
             ("task", json_string "eval");
             ("boolean", json_bool boolean);
             ("count", string_of_int (List.length report.Omq.Corpus.results));
             ( "items",
               json_list
                 (List.map
                    (fun (r : Omq.Corpus.result_one) ->
                      json_obj
                        (("name", json_string r.item_name)
                         ::
                         (match r.outcome with
                         | Error f -> failure_fields f
                         | Ok (Omq.Corpus.Classified _) -> assert false
                         | Ok (Omq.Corpus.Evaluated e) ->
                             ("outcome", json_string "ok")
                             :: ("consistent", json_bool e.consistent)
                             ::
                             (if not e.consistent then []
                              else if boolean then
                                [ ("certain", json_bool (e.answers <> [])) ]
                              else
                                [
                                  ( "answer_count",
                                    string_of_int (List.length e.answers) );
                                  ("answers", json_answers e.answers);
                                ]))))
                    report.Omq.Corpus.results) );
           ])
    else
      List.iter
        (fun (r : Omq.Corpus.result_one) ->
          match r.outcome with
          | Error f ->
              Fmt.pr "%-14s %a@." r.item_name Reasoner.Budget.pp_reason f.reason
          | Ok (Omq.Corpus.Classified _) -> assert false
          | Ok (Omq.Corpus.Evaluated e) ->
              if not e.consistent then Fmt.pr "%-14s inconsistent@." r.item_name
              else if boolean then
                Fmt.pr "%-14s certain=%b@." r.item_name (e.answers <> [])
              else
                Fmt.pr "%-14s %d answer(s)@." r.item_name
                  (List.length e.answers))
        report.Omq.Corpus.results
  in
  let run dir seed n jobs classify eval_q data max_extra timeout fuel
      max_clauses json stats trace fmt profile =
    run_result @@ fun () ->
    with_tracing trace fmt profile @@ fun () ->
    let items () =
      match dir with
      | Some d -> Omq.Corpus.load_dir d
      | None -> Ok (Omq.Corpus.generate ~seed ~n ())
    in
    match (classify, eval_q) with
    | true, Some _ -> Error "--classify and --eval are mutually exclusive"
    | false, Some qtext ->
        let* data_path =
          match data with
          | Some d -> Ok d
          | None -> Error "--eval requires --data FILE"
        in
        let* q = load_query qtext in
        let* d = load_instance data_path in
        let* items = items () in
        let report =
          Omq.Corpus.run ?timeout ?fuel ?max_clauses ~jobs
            (Omq.Corpus.Eval { query = q; data = d; max_extra })
            items
        in
        render_eval json q report;
        summary stats report;
        Ok (exit_of report)
    | true, None | false, None when classify || dir <> None ->
        let* items = items () in
        let report =
          Omq.Corpus.run ?timeout ?fuel ?max_clauses ~jobs Omq.Corpus.Classify
            items
        in
        render_classify json report;
        summary stats report;
        Ok (exit_of report)
    | _ ->
        (* Legacy default: the Section 1 table over the synthetic corpus,
           analyzed on the pool (submission-order tabulation keeps the
           table identical at every --jobs). *)
        let corpus = Array.of_list (Bioportal.Generate.corpus ~seed ~n ()) in
        let reports =
          Parallel.Pool.with_pool ~jobs (fun pool ->
              Parallel.Pool.map pool Bioportal.Analyze.analyze corpus)
        in
        let table = Bioportal.Analyze.tabulate (Array.to_list reports) in
        Fmt.pr "%a@." Bioportal.Analyze.pp_table table;
        let pt, pf, pq = Bioportal.Analyze.paper_reference in
        Fmt.pr
          "paper reference: %d total, %d in ALCHIF depth 2, %d in ALCHIQ depth 1@."
          pt pf pq;
        Ok 0
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Batch-process a corpus of ontologies on $(b,--jobs) worker domains: \
          $(b,--classify) locates each in the Figure 1 landscape, $(b,--eval) \
          answers a UCQ over $(b,--data) w.r.t. each; with neither, prints \
          the Section 1 table of the synthetic BioPortal corpus. Per-item \
          verdicts go to stdout in submission order (bit-identical for every \
          job count); timings and counters go to stderr.")
    Term.(
      const run $ dir_arg $ seed_arg $ n_arg $ jobs_arg $ classify_flag
      $ eval_arg $ data_arg $ bound_arg $ timeout_arg $ fuel_arg $ clauses_arg
      $ json_arg $ stats_arg $ trace_arg $ trace_format_arg $ profile_arg)

let decide_cmd =
  let out_arg =
    Arg.(value & opt int 5 & info [ "max-outdegree" ] ~doc:"Bouquet outdegree bound.")
  in
  let run path max_outdegree timeout fuel json trace fmt profile =
    run_result @@ fun () ->
    with_tracing trace fmt profile @@ fun () ->
    let* tbox = load_tbox path in
    let o = Dl.Translate.tbox tbox in
    let budget = budget_of timeout fuel in
    let report = function
      | Classify.Decide.Ptime_evidence n ->
          if json then
            Fmt.pr "%s@."
              (json_obj
                 [
                   ("verdict", json_string "ptime");
                   ("bouquets_checked", string_of_int n);
                 ])
          else Fmt.pr "PTIME query evaluation (evidence from %d bouquets)@." n;
          Ok 0
      | Classify.Decide.Conp_hard w ->
          if json then
            Fmt.pr "%s@."
              (json_obj
                 [
                   ("verdict", json_string "conp_hard");
                   ( "witness",
                     json_string
                       (String.concat " "
                          (String.split_on_char '\n'
                             (Fmt.str "%a" Structure.Instance.pp w))) );
                 ])
          else
            Fmt.pr "coNP-hard; non-materializable bouquet:@.%a@."
              Structure.Instance.pp w;
          Ok 0
    in
    let partial reason checked =
      if json then
        Fmt.pr "%s@."
          (json_obj
             [
               ("verdict", json_string (reason_name reason));
               ("bouquets_checked", string_of_int checked);
             ])
      else
        Fmt.pr "%a: %d bouquet(s) checked before exhaustion (all PTIME so far)@."
          Reasoner.Budget.pp_reason reason checked;
      Ok (reason_code reason)
    in
    match Classify.Decide.try_decide budget ~max_outdegree o with
    | `Ok verdict -> report verdict
    | `Timeout checked -> partial Reasoner.Budget.Timeout checked
    | `Out_of_fuel checked -> partial Reasoner.Budget.Fuel checked
  in
  Cmd.v
    (Cmd.info "decide"
       ~doc:
         "Decide PTIME query evaluation by bouquet materializability \
          (Theorem 13). With $(b,--timeout) or $(b,--fuel) a tripped budget \
          reports the bouquets checked so far and exits 124 or 125.")
    Term.(
      const run $ ontology_arg $ out_arg $ timeout_arg $ fuel_arg $ json_arg
      $ trace_arg $ trace_format_arg $ profile_arg)

let () =
  let doc = "Ontology-mediated querying with the guarded fragment (PODS'17 reproduction)." in
  let cmd =
    Cmd.group (Cmd.info "omq_tool" ~version:"1.0" ~doc)
      [ classify_cmd; eval_cmd; fig1_cmd; corpus_cmd; decide_cmd ]
  in
  (* Map exits ourselves: cmdliner's defaults (cli_error = 124,
     internal_error = 125) collide with the budget-trip codes. *)
  exit
    (match Cmd.eval_value cmd with
    | Ok (`Ok code) -> code
    | Ok (`Version | `Help) -> 0
    | Error (`Parse | `Term) -> exit_cli_misuse
    | Error `Exn -> 70)
